(** Andersen's inclusion-based points-to analysis.

    Worklist solver over a constraint graph: copy edges propagate whole
    points-to sets; load/store constraints add new copy edges as pointees
    are discovered. More precise than Steensgaard (subset- rather than
    equality-based), used by RELAY to resolve function pointers. *)

module A = Absloc

type t = {
  pts : (A.t, A.Set.t ref) Hashtbl.t;
  succs : (A.t, A.Set.t ref) Hashtbl.t;   (* copy edges: src -> dsts *)
  loads : (A.t, A.Set.t ref) Hashtbl.t;   (* s -> ds for d = *s *)
  stores : (A.t, A.Set.t ref) Hashtbl.t;  (* d -> ss for *d = s *)
}

let get tbl k =
  match Hashtbl.find_opt tbl k with
  | Some r -> r
  | None ->
      let r = ref A.Set.empty in
      Hashtbl.replace tbl k r;
      r

let solve (constraints : Constr.t list) : t =
  let st =
    {
      pts = Hashtbl.create 256;
      succs = Hashtbl.create 256;
      loads = Hashtbl.create 64;
      stores = Hashtbl.create 64;
    }
  in
  let work = Queue.create () in
  let add_pts n l =
    let r = get st.pts n in
    if not (A.Set.mem l !r) then begin
      r := A.Set.add l !r;
      Queue.push (n, l) work
    end
  in
  let add_edge s d =
    let r = get st.succs s in
    if not (A.Set.mem d !r) then begin
      r := A.Set.add d !r;
      (* propagate existing pts of s to d *)
      A.Set.iter (fun l -> add_pts d l) !(get st.pts s)
    end
  in
  List.iter
    (fun c ->
      match c with
      | Constr.Addr (d, a) -> add_pts d a
      | Constr.Copy (d, s) -> add_edge s d
      | Constr.Load (d, s) ->
          let r = get st.loads s in
          r := A.Set.add d !r;
          A.Set.iter (fun o -> add_edge o d) !(get st.pts s)
      | Constr.Store (d, s) ->
          let r = get st.stores d in
          r := A.Set.add s !r;
          A.Set.iter (fun o -> add_edge s o) !(get st.pts d))
    constraints;
  (* fixpoint *)
  while not (Queue.is_empty work) do
    let n, l = Queue.pop work in
    (* copy successors receive l *)
    A.Set.iter (fun d -> add_pts d l) !(get st.succs n);
    (* new pointee l of n activates load/store rules *)
    A.Set.iter (fun d -> add_edge l d) !(get st.loads n);
    A.Set.iter (fun s -> add_edge s l) !(get st.stores n)
  done;
  st

let points_to (st : t) (l : A.t) : A.Set.t =
  match Hashtbl.find_opt st.pts l with Some r -> !r | None -> A.Set.empty

let may_alias (st : t) (a : A.t) (b : A.t) : bool =
  A.equal a b || not (A.Set.is_empty (A.Set.inter (points_to st a) (points_to st b)))
