(** Abstract memory locations — the currency of pointer analysis and
    everything built on it (RELAY's shared-object sets and locksets, the
    escape filter, loop-lock address ranges).

    The abstraction is allocation-site based and field-/element-
    insensitive: one location per global, per function local, per malloc
    site, per function (for function pointers), plus anonymous
    temporaries introduced by constraint normalization. *)

type t =
  | AGlobal of string
  | ALocal of string * string  (** function, variable *)
  | AHeap of int               (** allocation-site statement id *)
  | AFun of string             (** function address *)
  | ATemp of int               (** constraint-normalization temporary *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string

(** Is this a location a program access can touch (i.e. not a temporary
    or a function body)? *)
val is_memory : t -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val pp_set : Set.t Fmt.t
