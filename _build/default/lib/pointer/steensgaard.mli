(** Steensgaard's unification-based points-to analysis (POPL 1996).

    Almost-linear time via union-find: every abstract location has a
    node; each equivalence class has at most one pointee class;
    assignments unify pointee classes and unification cascades
    recursively. Coarser than {!Andersen} but very fast. *)

type t

(** Solve a constraint system. *)
val solve : Constr.t list -> t

(** Points-to set of a location: the members of its pointee class.
    Empty if the location was never constrained. *)
val points_to : t -> Absloc.t -> Absloc.Set.t

(** Do two locations possibly alias (share an equivalence class)? *)
val may_alias : t -> Absloc.t -> Absloc.t -> bool
