(** Combined pointer-analysis driver and query interface, mirroring
    RELAY's use of pointer analysis (paper Section 6.2): Andersen
    resolves function pointers with an on-the-fly fixpoint; both solvers
    answer object and aliasing queries. *)

type solver = Use_andersen | Use_steensgaard

type t = {
  prog : Minic.Ast.program;
  tenv : Minic.Typecheck.env;
  andersen : Andersen.t;
  steensgaard : Steensgaard.t;
  solver : solver;
}

(** Run the analysis, iterating constraint generation and function-pointer
    resolution to a fixpoint (bounded rounds). *)
val run : ?solver:solver -> ?rounds:int -> Minic.Ast.program -> t

(** Points-to set under the selected solver, restricted to memory
    locations and functions. *)
val points_to : t -> Absloc.t -> Absloc.Set.t

(** The abstract location of variable [v] as seen from function
    [fname]. *)
val var_loc : t -> string -> string -> Absloc.t

(** Objects a read/write of the lvalue (evaluated in the named function)
    may touch — RELAY's overestimated shared-object sets. *)
val lval_objects : t -> string -> Minic.Ast.lval -> Absloc.Set.t

(** Pointer values an expression can evaluate to (lock arguments, spawn
    args). *)
val exp_objects : t -> string -> Minic.Ast.exp -> Absloc.Set.t

(** The lock object denoted by a [lock(e)] argument, only when it
    resolves to a single must-alias object (locksets must
    under-approximate to stay sound). *)
val lock_objects : t -> string -> Minic.Ast.exp -> Absloc.t option

(** Candidate targets of an indirect call through the expression. *)
val resolve_funptr : t -> string -> Minic.Ast.exp -> string list

(** Call graph built with pointer-based resolution of indirect calls. *)
val callgraph : t -> Minic.Callgraph.t
