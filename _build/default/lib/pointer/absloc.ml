(** Abstract memory locations.

    Pointer analysis (and everything built on it: RELAY's shared-object
    sets and locksets, the escape filter, loop-lock address ranges) works
    over a finite set of abstract locations: one per global, one per
    function local (RELAY "heapifies" address-taken locals — our [ALocal]
    plays that role; the escape filter decides which of them can really be
    shared), one per malloc site, one per function (for function
    pointers), and anonymous temporaries introduced when normalizing
    nested dereferences into three-address constraints. *)

type t =
  | AGlobal of string
  | ALocal of string * string  (** function, variable *)
  | AHeap of int               (** allocation-site statement id *)
  | AFun of string             (** function address *)
  | ATemp of int               (** constraint-normalization temporary *)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp ppf = function
  | AGlobal g -> Fmt.string ppf g
  | ALocal (f, v) -> Fmt.pf ppf "%s::%s" f v
  | AHeap sid -> Fmt.pf ppf "heap@%d" sid
  | AFun f -> Fmt.pf ppf "&%s" f
  | ATemp i -> Fmt.pf ppf "$t%d" i

let to_string l = Fmt.str "%a" pp l

(** Is this a location a program access can touch (i.e. not a temp or a
    function body)? *)
let is_memory = function
  | AGlobal _ | ALocal _ | AHeap _ -> true
  | AFun _ | ATemp _ -> false

module Set = Set.Make (struct
  type nonrec t = t
  let compare = compare
end)

module Map = Map.Make (struct
  type nonrec t = t
  let compare = compare
end)

let pp_set ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma pp) (Set.elements s)
