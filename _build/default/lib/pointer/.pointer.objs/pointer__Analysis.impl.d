lib/pointer/analysis.ml: Absloc Andersen Constr Hashtbl List Minic Steensgaard
