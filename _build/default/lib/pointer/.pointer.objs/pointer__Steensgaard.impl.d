lib/pointer/steensgaard.ml: Absloc Constr Hashtbl List
