lib/pointer/constr.ml: Absloc Fmt Hashtbl List Minic Option
