lib/pointer/analysis.mli: Absloc Andersen Minic Steensgaard
