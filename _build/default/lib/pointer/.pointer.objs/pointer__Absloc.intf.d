lib/pointer/absloc.mli: Fmt Map Set
