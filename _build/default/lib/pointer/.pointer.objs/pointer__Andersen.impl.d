lib/pointer/andersen.ml: Absloc Constr Hashtbl List Queue
