lib/pointer/andersen.mli: Absloc Constr Hashtbl
