lib/pointer/absloc.ml: Fmt Map Set Stdlib
