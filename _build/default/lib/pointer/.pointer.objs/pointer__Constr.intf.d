lib/pointer/constr.mli: Absloc Fmt Minic
