lib/pointer/steensgaard.mli: Absloc Constr
