(** Andersen's inclusion-based points-to analysis (PhD thesis, 1994).

    Worklist solver over a constraint graph: copy edges propagate whole
    points-to sets; load/store constraints add new copy edges as pointees
    are discovered. Subset-based, hence more precise than
    {!Steensgaard}; used to resolve function pointers. *)

type t = {
  pts : (Absloc.t, Absloc.Set.t ref) Hashtbl.t;
  succs : (Absloc.t, Absloc.Set.t ref) Hashtbl.t;
  loads : (Absloc.t, Absloc.Set.t ref) Hashtbl.t;
  stores : (Absloc.t, Absloc.Set.t ref) Hashtbl.t;
}

val solve : Constr.t list -> t
val points_to : t -> Absloc.t -> Absloc.Set.t
val may_alias : t -> Absloc.t -> Absloc.t -> bool
