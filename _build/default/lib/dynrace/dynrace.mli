(** Vector-clock dynamic data-race detector (FastTrack-style). Two roles
    (paper Sections 1, 7.3): test oracle — every dynamically observed
    race must be covered by RELAY's static report, and Chimera-transformed
    programs must be race-free when weak locks count as synchronization —
    and the 100%-of-memory-ops baseline of Figure 6. *)

module Vc : sig
  type t

  val empty : t
  val get : int -> t -> int
  val tick : int -> t -> t
  val join : t -> t -> t

  (** epoch (tid, clock) happens-before vc? *)
  val epoch_le : int * int -> t -> bool

  val pp : t Fmt.t
end

type race = {
  dr_addr : Runtime.Key.addr;
  dr_sid1 : int;   (** earlier access *)
  dr_sid2 : int;   (** later access *)
  dr_write1 : bool;
  dr_write2 : bool;
}

val pp_race : race Fmt.t

type t

(** [track_weak] treats weak-lock operations as synchronization (true
    when checking transformed programs for race-freedom). *)
val create : ?track_weak:bool -> unit -> t

(** Memory operations examined so far (the Figure 6 100%% baseline). *)
val n_checks : t -> int

val on_mem : t -> int -> Runtime.Key.addr -> write:bool -> sid:int -> unit
val on_sync : t -> int -> Interp.Engine.sync_event -> unit

(** Wire the detector into engine hooks (returns them). *)
val attach : t -> Interp.Engine.hooks -> Interp.Engine.hooks

val races : t -> race list
val n_races : t -> int
