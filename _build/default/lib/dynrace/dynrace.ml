(** Vector-clock dynamic data-race detector (FastTrack-style).

    Two roles in this project, mirroring the paper's discussion (Sections
    1 and 7.3):

    - {e test oracle}: RELAY is sound, so every race this detector
      observes dynamically must be covered by a static race-pair report,
      and the Chimera-transformed program must be race-free when
      weak-lock operations are treated as synchronization;
    - {e baseline}: a dynamic detector must instrument 100% of memory
      operations — the reference line in Figure 6 against which Chimera's
      ~0.02% instrumented operations are compared (and the ~8x-slowdown
      software detectors of Section 1).

    The detector subscribes to engine hooks; it maintains one vector
    clock per thread, per lock/condition/weak-lock, and per barrier, and
    a last-writer epoch plus read map per memory cell. *)

module K = Runtime.Key

module Vc = struct
  module M = Map.Make (Int)

  type t = int M.t

  let empty : t = M.empty
  let get tid (vc : t) = Option.value (M.find_opt tid vc) ~default:0
  let tick tid (vc : t) = M.add tid (get tid vc + 1) vc
  let join (a : t) (b : t) : t = M.union (fun _ x y -> Some (max x y)) a b

  (** epoch (tid, clock) happens-before vc? *)
  let epoch_le (tid, clock) (vc : t) = clock <= get tid vc

  let pp ppf (vc : t) =
    Fmt.pf ppf "{%a}"
      Fmt.(list ~sep:comma (pair ~sep:(any ":") int int))
      (M.bindings vc)
end

type epoch = { e_tid : int; e_clock : int; e_sid : int }

type cell = {
  mutable last_write : epoch option;
  mutable reads : epoch list;  (** concurrent readers *)
}

type race = {
  dr_addr : K.addr;
  dr_sid1 : int;  (** earlier access *)
  dr_sid2 : int;  (** later access *)
  dr_write1 : bool;
  dr_write2 : bool;
}

let pp_race ppf r =
  Fmt.pf ppf "race on %a: sid %d%s vs sid %d%s" K.pp_addr r.dr_addr r.dr_sid1
    (if r.dr_write1 then "[W]" else "[R]")
    r.dr_sid2
    (if r.dr_write2 then "[W]" else "[R]")

type t = {
  mutable thread_vc : Vc.t Vc.M.t;      (** tid -> clock *)
  obj_vc : (K.addr, Vc.t) Hashtbl.t;    (** locks / conds / barriers *)
  weak_vc : (Minic.Ast.weak_lock, Vc.t) Hashtbl.t;
  spawn_vc : (int, Vc.t) Hashtbl.t;     (** child tid -> parent clock *)
  cells : cell K.Addr_tbl.t;
  mutable races : race list;
  seen : (int * int * K.addr, unit) Hashtbl.t;
  track_weak : bool;
      (** treat weak locks as synchronization (true when checking the
          transformed program for race-freedom) *)
  mutable n_checks : int;
}

let create ?(track_weak = true) () : t =
  {
    thread_vc = Vc.M.empty;
    obj_vc = Hashtbl.create 64;
    weak_vc = Hashtbl.create 64;
    spawn_vc = Hashtbl.create 16;
    cells = K.Addr_tbl.create 1024;
    races = [];
    seen = Hashtbl.create 64;
    track_weak;
    n_checks = 0;
  }

let vc_of (t : t) tid =
  Option.value (Vc.M.find_opt tid t.thread_vc) ~default:(Vc.tick tid Vc.empty)

let set_vc (t : t) tid vc = t.thread_vc <- Vc.M.add tid vc t.thread_vc

let obj_vc (t : t) k = Option.value (Hashtbl.find_opt t.obj_vc k) ~default:Vc.empty

let report (t : t) (addr : K.addr) (e1 : epoch) ~w1 (sid2 : int) ~w2 =
  let key = (min e1.e_sid sid2, max e1.e_sid sid2, addr) in
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    t.races <-
      {
        dr_addr = addr;
        dr_sid1 = e1.e_sid;
        dr_sid2 = sid2;
        dr_write1 = w1;
        dr_write2 = w2;
      }
      :: t.races
  end

let on_mem (t : t) tid (addr : K.addr) ~write ~sid =
  (* frame cells of other threads cannot be distinguished here; check all *)
  t.n_checks <- t.n_checks + 1;
  let vc = vc_of t tid in
  let cell =
    match K.Addr_tbl.find_opt t.cells addr with
    | Some c -> c
    | None ->
        let c = { last_write = None; reads = [] } in
        K.Addr_tbl.add t.cells addr c;
        c
  in
  let my_clock = Vc.get tid vc in
  (match cell.last_write with
  | Some w
    when w.e_tid <> tid && not (Vc.epoch_le (w.e_tid, w.e_clock) vc) ->
      report t addr w ~w1:true sid ~w2:write
  | _ -> ());
  if write then begin
    List.iter
      (fun r ->
        if r.e_tid <> tid && not (Vc.epoch_le (r.e_tid, r.e_clock) vc) then
          report t addr r ~w1:false sid ~w2:true)
      cell.reads;
    cell.last_write <- Some { e_tid = tid; e_clock = my_clock; e_sid = sid };
    cell.reads <- []
  end
  else begin
    (* keep one read epoch per thread *)
    cell.reads <-
      { e_tid = tid; e_clock = my_clock; e_sid = sid }
      :: List.filter (fun r -> r.e_tid <> tid) cell.reads
  end

let on_sync (t : t) tid (ev : Interp.Engine.sync_event) =
  let vc = vc_of t tid in
  match ev with
  | SyAcquire k -> set_vc t tid (Vc.join vc (obj_vc t k))
  | SyRelease k ->
      Hashtbl.replace t.obj_vc k (Vc.join (obj_vc t k) vc);
      set_vc t tid (Vc.tick tid vc)
  | SyBarrierArrive k ->
      Hashtbl.replace t.obj_vc k (Vc.join (obj_vc t k) vc);
      set_vc t tid (Vc.tick tid vc)
  | SyBarrier k -> set_vc t tid (Vc.join (vc_of t tid) (obj_vc t k))
  | SyCondSignal k ->
      Hashtbl.replace t.obj_vc k (Vc.join (obj_vc t k) vc);
      set_vc t tid (Vc.tick tid vc)
  | SyCondWake k -> set_vc t tid (Vc.join vc (obj_vc t k))
  | SySpawn child ->
      Hashtbl.replace t.spawn_vc child vc;
      set_vc t tid (Vc.tick tid vc)
  | SyThreadStart -> (
      match Hashtbl.find_opt t.spawn_vc tid with
      | Some pvc -> set_vc t tid (Vc.join (Vc.tick tid vc) pvc)
      | None -> set_vc t tid (Vc.tick tid vc))
  | SyJoin target -> set_vc t tid (Vc.join vc (vc_of t target))
  | SyWeakAcq l ->
      if t.track_weak then
        let wvc =
          Option.value (Hashtbl.find_opt t.weak_vc l) ~default:Vc.empty
        in
        set_vc t tid (Vc.join vc wvc)
  | SyWeakRel l ->
      if t.track_weak then begin
        let wvc =
          Option.value (Hashtbl.find_opt t.weak_vc l) ~default:Vc.empty
        in
        Hashtbl.replace t.weak_vc l (Vc.join wvc vc);
        set_vc t tid (Vc.tick tid vc)
      end

(** Attach the detector to engine hooks. Frame-local cells are monitored
    too — locals of distinct frames have distinct origins, so they never
    collide across threads. *)
let attach (t : t) (hooks : Interp.Engine.hooks) : Interp.Engine.hooks =
  hooks.on_mem <- Some (fun tid addr ~write ~sid -> on_mem t tid addr ~write ~sid);
  hooks.on_sync <- Some (fun tid ev -> on_sync t tid ev);
  hooks

let races (t : t) = List.rev t.races
let n_races (t : t) = List.length t.races
let n_checks (t : t) = t.n_checks
