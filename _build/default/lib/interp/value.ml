(** Runtime values for the MiniC interpreter.

    Pointers are (block, cell-offset) pairs; pointer arithmetic is
    cell-granular (adding [n] moves [n] cells regardless of pointee type),
    while array indexing [a\[i\]] scales by element size — the documented
    MiniC flattening of C's byte-addressed model onto word cells. *)

type ptr = { p_block : int; p_off : int }

type t =
  | VInt of int
  | VPtr of ptr
  | VFun of string

let zero = VInt 0

let pp ppf = function
  | VInt n -> Fmt.int ppf n
  | VPtr p -> Fmt.pf ppf "&b%d+%d" p.p_block p.p_off
  | VFun f -> Fmt.pf ppf "&%s" f

exception Fault of string

let fault fmt = Fmt.kstr (fun m -> raise (Fault m)) fmt

let to_int = function
  | VInt n -> n
  | VPtr _ -> fault "pointer used as integer"
  | VFun f -> fault "function %s used as integer" f

let truthy = function
  | VInt 0 -> false
  | VInt _ -> true
  | VPtr _ | VFun _ -> true

let equal_value a b =
  match (a, b) with
  | VInt x, VInt y -> x = y
  | VPtr x, VPtr y -> x = y
  | VFun x, VFun y -> String.equal x y
  | VPtr _, VInt 0 | VInt 0, VPtr _ -> false (* valid pointer is non-null *)
  | _ -> false
