(** Runtime values. Pointers are (block, cell-offset) pairs; pointer
    arithmetic is cell-granular while array indexing scales by element
    size (MiniC's word-cell flattening of C's byte addressing). *)

type ptr = { p_block : int; p_off : int }

type t =
  | VInt of int
  | VPtr of ptr
  | VFun of string

val zero : t
val pp : t Fmt.t

exception Fault of string
(** Runtime error in the simulated program (out-of-bounds access,
    division by zero, type confusion, ...); kills the faulting thread. *)

val fault : ('a, Format.formatter, unit, 'b) format4 -> 'a
val to_int : t -> int
val truthy : t -> bool
val equal_value : t -> t -> bool
