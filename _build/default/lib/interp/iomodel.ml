(** Models of the nondeterministic environment: what [input()],
    [net_read(buf, n)] and [file_read(buf, n)] return during a recorded
    (or native) run.

    Each benchmark configures a model matching its workload (download
    sizes for aget, request streams for the servers, file contents for
    pfscan/pbzip2). Values are drawn from a splitmix-style PRNG seeded per
    (thread, call-sequence) so that the environment itself is a fixed
    function of the seed — runs differ only through scheduling. *)

type request = {
  rq_tid_path : Runtime.Key.tid_path;
  rq_seq : int;          (** per-thread syscall sequence number *)
  rq_max : int;          (** buffer capacity for reads; 0 for [input] *)
}

type t = {
  io_input : request -> int;
      (** result of [input()] *)
  io_read : request -> int list;
      (** bytes returned by [net_read]/[file_read]; [] = EOF *)
}

(* splitmix64-ish mixing, truncated to 62 bits to stay in OCaml int *)
let mix seed k =
  let z = ref (seed + (k * 0x1E3779B97F4A7C15)) in
  z := (!z lxor (!z lsr 30)) * 0x3F58476D1CE4E5B9;
  z := (!z lxor (!z lsr 27)) * 0x14D049BB133111EB;
  (!z lxor (!z lsr 31)) land max_int

let hash_request seed (r : request) =
  mix seed (Hashtbl.hash (r.rq_tid_path, r.rq_seq))

(** Uniform random ints; reads return full buffers of pseudorandom bytes
    forever (callers decide when to stop). *)
let random ~seed : t =
  {
    io_input = (fun r -> hash_request seed r mod 1000);
    io_read =
      (fun r ->
        let h = hash_request seed r in
        List.init (max 1 r.rq_max) (fun i -> mix h i mod 256));
  }

(** A stream model: each thread reads [chunks] bursts of [chunk_size]
    pseudorandom bytes, then EOF. [input()] returns values in
    [0, input_range). *)
let stream ~seed ~chunks ~chunk_size ~input_range : t =
  {
    io_input =
      (fun r -> hash_request seed r mod max 1 input_range);
    io_read =
      (fun r ->
        if r.rq_seq >= chunks then []
        else
          let h = hash_request seed r in
          let n = min chunk_size (max 1 r.rq_max) in
          List.init n (fun i -> mix h i mod 256));
  }
