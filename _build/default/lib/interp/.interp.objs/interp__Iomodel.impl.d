lib/interp/iomodel.ml: Hashtbl List Runtime
