lib/interp/value.ml: Fmt String
