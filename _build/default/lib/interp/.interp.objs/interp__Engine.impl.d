lib/interp/engine.ml: Array Cost Effect Fmt Fun Hashtbl Iomodel List Mem Minic Option Printexc Replay Runtime String Sys Value
