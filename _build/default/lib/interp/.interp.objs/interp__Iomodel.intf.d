lib/interp/iomodel.mli: Runtime
