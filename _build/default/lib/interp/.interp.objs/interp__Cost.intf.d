lib/interp/cost.mli:
