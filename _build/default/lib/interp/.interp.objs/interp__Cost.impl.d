lib/interp/cost.ml:
