lib/interp/mem.ml: Array Fmt Hashtbl Key List Runtime String Value
