lib/interp/value.mli: Fmt Format
