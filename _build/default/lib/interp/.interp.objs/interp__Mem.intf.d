lib/interp/mem.mli: Hashtbl Runtime Value
