(** Models of the nondeterministic environment: what [input()],
    [net_read] and [file_read] return during a native/recorded run.
    Values are a fixed function of the seed and the (thread,
    call-sequence) pair, so runs differ only through scheduling. *)

type request = {
  rq_tid_path : Runtime.Key.tid_path;
  rq_seq : int;  (** per-thread syscall sequence number *)
  rq_max : int;  (** buffer capacity; 0 for [input] *)
}

type t = {
  io_input : request -> int;
  io_read : request -> int list;  (** [] = EOF *)
}

(** Uniform ints; reads return full pseudorandom buffers forever. *)
val random : seed:int -> t

(** Each thread reads [chunks] bursts of [chunk_size] bytes, then EOF;
    [input()] ranges over [0, input_range). *)
val stream : seed:int -> chunks:int -> chunk_size:int -> input_range:int -> t
