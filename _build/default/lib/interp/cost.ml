(** Cost model for the multiprocessor simulator.

    The paper measures wall-clock overhead on an 8-core Xeon; we measure
    simulated makespan (ticks) on N simulated cores. Each micro-operation
    charges its core a number of ticks. The constants below set the
    {e relative} prices that drive the paper's shapes: weak-lock
    operations and log appends are expensive relative to ordinary
    statements (tens-to-hundreds of cycles of locked bus traffic and
    buffer writes vs. an ALU op), system calls more so, and network I/O
    blocks for a long latency that recording can hide under (why aget /
    knot / apache record at ~1x, Section 7.3). *)

type t = {
  c_stmt : int;        (** ordinary statement execution *)
  c_sync : int;        (** mutex/barrier/cond operation *)
  c_syscall : int;     (** base syscall cost *)
  c_weak_op : int;     (** weak-lock acquire or release *)
  c_range : int;       (** evaluating + checking one address range *)
  c_log_sync : int;    (** recording one sync HB entry *)
  c_log_weak : int;    (** recording one weak-lock entry *)
  c_log_input : int;   (** recording four syscall result words (the input
                           log is a straight buffer copy, far cheaper per
                           word than the structured sync/weak entries) *)
  l_net : int;         (** net_read blocking latency (ticks) *)
  l_file : int;        (** file_read blocking latency (ticks) *)
  l_spawn : int;       (** thread creation cost *)
}

(** Defaults calibrated so the uninstrumented-vs-naive-instrumentation
    ratio lands in the paper's ~50x region when ~14% of dynamic memory
    operations carry an instruction-granularity weak lock
    (2 weak ops + 2 log writes ≈ 350 ticks vs. ~1-tick statements). *)
let default =
  {
    c_stmt = 1;
    c_sync = 12;
    c_syscall = 60;
    c_weak_op = 110;
    c_range = 8;
    c_log_sync = 12;
    c_log_weak = 65;
    c_log_input = 1;
    l_net = 12000;
    l_file = 150;
    l_spawn = 80;
  }
