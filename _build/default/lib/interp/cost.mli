(** Cost model for the multiprocessor simulator. The paper measures
    wall-clock on an 8-core Xeon; we measure simulated makespan with
    these relative prices (see DESIGN.md). *)

type t = {
  c_stmt : int;        (** ordinary statement execution *)
  c_sync : int;        (** mutex/barrier/cond operation *)
  c_syscall : int;     (** base syscall cost *)
  c_weak_op : int;     (** weak-lock acquire or release *)
  c_range : int;       (** evaluating + checking one address range *)
  c_log_sync : int;    (** recording one sync HB entry *)
  c_log_weak : int;    (** recording one weak-lock entry *)
  c_log_input : int;   (** recording four syscall result words *)
  l_net : int;         (** net_read blocking latency (ticks) *)
  l_file : int;        (** file_read blocking latency (ticks) *)
  l_spawn : int;       (** thread creation cost *)
}

(** Calibrated so naive instruction-granularity instrumentation of ~14%
    of memory operations lands in the paper's ~50x region. *)
val default : t
