(** A small LZ77 compressor, standing in for gzip when reporting
    compressed log sizes (Table 2 of the paper reports gzip'd log sizes;
    only the relative sizes across applications matter for the
    reproduction).

    Format: a stream of tokens. Token tag byte [t]:
    - [t < 0x80]: literal run of [t+1] bytes, copied verbatim;
    - [t >= 0x80]: match; length = [t - 0x80 + min_match], followed by a
      2-byte little-endian distance.

    Greedy longest-match search over a 8 KiB window with a 3-byte hash
    chain. Round-trips exactly (tested). *)

let min_match = 4
let max_match = 130  (* 0xFF - 0x80 + min_match + 1 *)
let window = 8192
let max_literal_run = 128

let hash3 (s : string) i =
  ((Char.code s.[i] lsl 10) lxor (Char.code s.[i + 1] lsl 5)
  lxor Char.code s.[i + 2])
  land 0x3fff

let compress (src : string) : string =
  let n = String.length src in
  let out = Buffer.create (n / 2) in
  let head = Array.make 0x4000 (-1) in
  let prev = Array.make (max n 1) (-1) in
  let lit_start = ref 0 in
  let flush_literals upto =
    let i = ref !lit_start in
    while !i < upto do
      let run = min max_literal_run (upto - !i) in
      Buffer.add_char out (Char.chr (run - 1));
      Buffer.add_substring out src !i run;
      i := !i + run
    done;
    lit_start := upto
  in
  let insert i =
    if i + 2 < n then begin
      let h = hash3 src i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let i = ref 0 in
  while !i < n do
    let best_len = ref 0 and best_dist = ref 0 in
    if !i + min_match <= n && !i + 2 < n then begin
      let h = hash3 src !i in
      let cand = ref head.(h) in
      let tries = ref 32 in
      while !cand >= 0 && !tries > 0 do
        if !i - !cand <= window then begin
          let len = ref 0 in
          let maxl = min max_match (n - !i) in
          while
            !len < maxl && src.[!cand + !len] = src.[!i + !len]
          do
            incr len
          done;
          if !len > !best_len then begin
            best_len := !len;
            best_dist := !i - !cand
          end;
          cand := prev.(!cand);
          decr tries
        end
        else begin
          cand := -1
        end
      done
    end;
    if !best_len >= min_match then begin
      flush_literals !i;
      Buffer.add_char out (Char.chr (0x80 lor (!best_len - min_match)));
      Buffer.add_char out (Char.chr (!best_dist land 0xff));
      Buffer.add_char out (Char.chr ((!best_dist lsr 8) land 0xff));
      let stop = !i + !best_len in
      while !i < stop do
        insert !i;
        incr i
      done;
      lit_start := !i
    end
    else begin
      insert !i;
      incr i
    end
  done;
  flush_literals n;
  Buffer.contents out

let decompress (z : string) : string =
  let out = Buffer.create (String.length z * 2) in
  let i = ref 0 in
  let n = String.length z in
  while !i < n do
    let t = Char.code z.[!i] in
    incr i;
    if t < 0x80 then begin
      let run = t + 1 in
      Buffer.add_substring out z !i run;
      i := !i + run
    end
    else begin
      let len = t - 0x80 + min_match in
      let dist = Char.code z.[!i] lor (Char.code z.[!i + 1] lsl 8) in
      i := !i + 2;
      let start = Buffer.length out - dist in
      for k = 0 to len - 1 do
        Buffer.add_char out (Buffer.nth out (start + k))
      done
    end
  done;
  Buffer.contents out

(** Compressed size in bytes. *)
let compressed_size (s : string) : int = String.length (compress s)
