(** A small LZ77 compressor, standing in for gzip when reporting
    compressed log sizes (Table 2). Round-trips exactly. *)

val compress : string -> string
val decompress : string -> string
val compressed_size : string -> int
