lib/profiling/profile.mli: Fmt Hashtbl Interp Minic Set
