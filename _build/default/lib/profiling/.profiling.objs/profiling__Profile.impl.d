lib/profiling/profile.ml: Fmt Hashtbl Interp List Minic Option Set
