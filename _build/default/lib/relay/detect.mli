(** Static race detection from RELAY summaries.

    A race pair is a pair of statements that may access the same abstract
    object from two concurrently-runnable thread roots, with disjoint
    locksets, at least one side writing. Fork/join and barrier ordering
    are ignored (RELAY's deliberate imprecision, recovered by Chimera's
    profiling); races on function locals are dropped unless the local
    escapes its frame (the paper's sound heapified-local filter,
    Section 6.2). *)

type site = {
  st_sid : int;
  st_fname : string;
  st_line : int;
  st_write : bool;
}

val pp_site : site Fmt.t

type race_pair = {
  rp_s1 : site;  (** site with the smaller sid *)
  rp_s2 : site;
  rp_objs : Pointer.Absloc.t list;  (** objects the pair races on *)
}

val pp_race_pair : race_pair Fmt.t

type report = {
  races : race_pair list;
  racy_sids : (int, unit) Hashtbl.t;
  racy_fun_pairs : (string * string) list;  (** deduped, ordered pairs *)
  roots : string list;  (** thread entry points considered *)
}

(** Does the local escape its function (address reachable from a global,
    the heap, or another frame in the points-to solution)? Non-local
    locations trivially "escape". *)
val escapes : Pointer.Analysis.t -> Pointer.Absloc.t -> bool

(** Race detection over computed summaries. *)
val detect : Summary.t -> report

(** Full static pipeline: pointer analysis, summaries, detection. *)
val analyze : Minic.Ast.program -> Summary.t * report

val pp_report : report Fmt.t
