lib/relay/summary.mli: Fmt Hashtbl Map Minic Pointer
