lib/relay/detect.ml: Array Fmt Hashtbl List Minic Option Pointer Summary
