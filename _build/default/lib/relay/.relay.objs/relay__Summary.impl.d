lib/relay/summary.ml: Fmt Hashtbl List Map Minic Option Pointer String
