lib/relay/detect.mli: Fmt Hashtbl Minic Pointer Summary
