lib/chimera/runner.mli: Engine Fmt Interp Iomodel Minic Replay Runtime
