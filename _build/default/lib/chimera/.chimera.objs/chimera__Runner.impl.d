lib/chimera/runner.ml: Engine Fmt Interp List Minic Replay Runtime String Zcompress
