lib/chimera/pipeline.mli: Instrument Interp Minic Profiling Relay
