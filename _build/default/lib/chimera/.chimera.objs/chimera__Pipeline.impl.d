lib/chimera/pipeline.ml: Instrument Interp Minic Profiling Relay
