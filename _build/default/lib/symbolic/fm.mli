(** Fourier–Motzkin elimination over affine inequalities — the project's
    substitute for the paper's use of lpsolve (Section 6.1). An
    inequality is an affine expression [e] meaning [e >= 0]. *)

type ineq = Linexp.t

val pp_ineq : ineq Fmt.t

(** Project out one variable. Over the integers FM over-approximates the
    projection — the sound direction for address ranges. *)
val eliminate : string -> ineq list -> ineq list

val eliminate_all : string list -> ineq list -> ineq list

(** Detect a trivially false system (a negative constant inequality)
    after elimination. *)
val infeasible : ineq list -> bool

(** Symbolic bounds of [target] subject to the system, eliminating the
    variables in [elim]. Returns (lowers, uppers): affine expressions L,
    U over the remaining symbols with L <= target <= U. Bounds whose
    coefficient does not divide exactly are dropped (conservative). *)
val bounds_of :
  elim:string list -> ineq list -> Linexp.t -> Linexp.t list * Linexp.t list
