(** Symbolic address-bounds analysis for racy loops (Section 5 of the
    paper, after Rugina–Rinard).

    Given a loop containing statically-racy statements, derive for every
    memory access in those statements a symbolic address range
    [lo .. hi] whose symbols are loop-invariant, so the instrumenter can
    guard the whole loop with a single loop-lock protecting just that
    range (Figure 4: [WEAK-LOCK(&rank[0] to &rank[radix-1])]).

    The analysis is intraprocedural: a loop body containing a function
    call is rejected ([Has_call]), as in the paper (Section 5.3). Offsets
    must be affine in the induction variables of the enclosing loop nest
    with loop-invariant coefficients; anything else — indices loaded from
    memory (radix's [rank[my_key]]), modulo/bitwise arithmetic — yields
    [Non_affine]/[Unbounded], the paper's two sources of imprecision
    (Section 5.2). Bounds are obtained by Fourier–Motzkin projection of
    the induction variables (our lpsolve substitute). *)

open Minic.Ast

type reason =
  | Has_call       (** loop body calls a function: intraprocedural bail-out *)
  | No_induction   (** offset depends on a loop without a recognized IV *)
  | Non_affine     (** offset not affine (loaded index, modulo, ...) *)
  | Unbounded      (** FM projection produced no finite symbolic bound *)
  | Not_invariant  (** base pointer or bound symbol assigned in the loop *)

let pp_reason ppf r =
  Fmt.string ppf
    (match r with
    | Has_call -> "has-call"
    | No_induction -> "no-induction"
    | Non_affine -> "non-affine"
    | Unbounded -> "unbounded"
    | Not_invariant -> "not-invariant")

type result =
  | Precise of warange list
      (** address ranges (inclusive, with access mode), evaluable at loop
          entry *)
  | Imprecise of reason

exception Bail of reason

(* ------------------------------------------------------------------ *)

(* variables assigned anywhere in a block (including nested) *)
let assigned_vars (b : block) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  iter_stmts
    (fun s ->
      match s.skind with
      | Assign (Var v, _) -> Hashtbl.replace tbl v ()
      | Builtin (Some (Var v), _, _) | Call (Some (Var v), _, _) ->
          Hashtbl.replace tbl v ()
      | _ -> ())
    b;
  tbl

(* variables whose *value* an expression reads (a variable under a direct
   address-of is not read) *)
let rec value_reads (e : exp) : string list =
  match e with
  | Const _ -> []
  | Lval lv -> lval_value_reads lv
  | AddrOf (Var _) -> []
  | AddrOf lv -> lval_addr_reads lv
  | Unop (_, e) -> value_reads e
  | Binop (_, a, b) -> value_reads a @ value_reads b

and lval_value_reads = function
  | Var v -> [ v ]
  | Deref e -> value_reads e
  | Index (lv, e) -> lval_addr_reads lv @ value_reads e
  | Field (lv, _) -> lval_addr_reads lv
  | Arrow (e, _) -> value_reads e

(* reads needed to compute the *address* of an lvalue *)
and lval_addr_reads = function
  | Var _ -> []
  | Deref e -> value_reads e
  | Index (lv, e) -> lval_addr_reads lv @ value_reads e
  | Field (lv, _) -> lval_addr_reads lv
  | Arrow (e, _) -> value_reads e

(* ------------------------------------------------------------------ *)

type ctx = {
  fenv : Minic.Typecheck.env;
  structs : struct_decl list;
  ivs : (string, unit) Hashtbl.t;       (* induction variables *)
  assigned : (string, unit) Hashtbl.t;  (* vars assigned in the target loop *)
  allow_masks : bool;
      (* extension beyond the paper: [e & c] (c >= 0) lies in [0, c] for
         every two's-complement e, so it can be modeled as a fresh bounded
         variable; the paper leaves masks unsupported (Section 5.2) *)
  mutable fresh_bounded : (string * int) list;
      (* fresh mask variables with their upper bounds *)
  mutable fresh_count : int;
}

let is_iv ctx v = Hashtbl.mem ctx.ivs v
let is_invariant ctx v = not (Hashtbl.mem ctx.assigned v)

(** Affine view of an integer expression over IVs and invariant symbols. *)
let rec affine ctx (e : exp) : Linexp.t =
  match e with
  | Const n -> Linexp.const n
  | Lval (Var v) ->
      if is_iv ctx v then Linexp.var v
      else if is_invariant ctx v then Linexp.var v
      else raise (Bail Not_invariant)
  | Lval _ -> raise (Bail Non_affine) (* loaded from memory *)
  | AddrOf _ -> raise (Bail Non_affine)
  | Unop (Neg, e) -> Linexp.neg (affine ctx e)
  | Unop (_, _) -> raise (Bail Non_affine)
  | Binop (Add, a, b) -> Linexp.add (affine ctx a) (affine ctx b)
  | Binop (Sub, a, b) -> Linexp.sub (affine ctx a) (affine ctx b)
  | Binop (Mul, a, b) -> (
      match Linexp.mul (affine ctx a) (affine ctx b) with
      | Some r -> r
      | None -> raise (Bail Non_affine))
  | Binop (BAnd, a, b) when ctx.allow_masks -> (
      (* mask extension: e & c is in [0, c] regardless of e *)
      let const_side =
        match (a, b) with
        | _, Const c when c >= 0 -> Some c
        | Const c, _ when c >= 0 -> Some c
        | _ -> None
      in
      match const_side with
      | Some c ->
          ctx.fresh_count <- ctx.fresh_count + 1;
          let v = Fmt.str "$mask%d" ctx.fresh_count in
          ctx.fresh_bounded <- (v, c) :: ctx.fresh_bounded;
          Hashtbl.replace ctx.ivs v ();
          Linexp.var v
      | None -> raise (Bail Non_affine))
  | Binop ((Div | Mod | BAnd | BOr | BXor | Shl | Shr), _, _) ->
      (* unsupported arithmetic: the paper's second imprecision source *)
      raise (Bail Non_affine)
  | Binop (_, _, _) -> raise (Bail Non_affine)

(* An expression that can serve as a runtime-evaluable base pointer at loop
   entry: all its value reads must be invariant. *)
let check_base_invariant ctx (e : exp) =
  List.iter
    (fun v -> if not (is_invariant ctx v) then raise (Bail Not_invariant))
    (value_reads e)

(** Decompose the address of [lv] into (base expression, affine cell
    offset). Pointer arithmetic in MiniC is cell-granular; [Index] scales
    by element size. *)
let rec addr_of_lval ctx (lv : lval) : exp * Linexp.t =
  match lv with
  | Var _ -> (AddrOf lv, Linexp.zero)
  | Field (base, f) ->
      let bexp, off = addr_of_lval ctx base in
      let sname =
        match Minic.Typecheck.type_of_lval ctx.fenv base with
        | Tstruct s -> s
        | _ -> raise (Bail Non_affine)
      in
      let foff, _ = Minic.Ast.field_offset ctx.structs sname f in
      (bexp, Linexp.add off (Linexp.const foff))
  | Arrow (e, f) ->
      check_base_invariant ctx e;
      let sname =
        match Minic.Typecheck.type_of_exp ctx.fenv e with
        | Tptr (Tstruct s) -> s
        | _ -> raise (Bail Non_affine)
      in
      let foff, _ = Minic.Ast.field_offset ctx.structs sname f in
      (e, Linexp.const foff)
  | Index (base, idx) ->
      let elem =
        match Minic.Typecheck.type_of_lval ctx.fenv base with
        | Tarray (t, _) | Tptr t -> Minic.Ast.sizeof ctx.structs t
        | _ -> 1
      in
      let scaled = Linexp.scale elem (affine ctx idx) in
      let base_is_array =
        match Minic.Typecheck.type_of_lval ctx.fenv base with
        | Tarray _ -> true
        | _ -> false
      in
      if base_is_array then begin
        let bexp, off = addr_of_lval ctx base in
        (bexp, Linexp.add off scaled)
      end
      else begin
        (* pointer base: address = value of base + idx*elem *)
        let bexp = Lval base in
        check_base_invariant ctx bexp;
        (bexp, scaled)
      end
  | Deref e -> decompose_ptr_exp ctx e

(* split a pointer-valued expression into invariant base + affine offset *)
and decompose_ptr_exp ctx (e : exp) : exp * Linexp.t =
  match e with
  | Binop (Add, a, b) -> (
      match exp_is_pointer ctx a, exp_is_pointer ctx b with
      | true, false ->
          let base, off = decompose_ptr_exp ctx a in
          (base, Linexp.add off (affine ctx b))
      | false, true ->
          let base, off = decompose_ptr_exp ctx b in
          (base, Linexp.add off (affine ctx a))
      | _ -> raise (Bail Non_affine))
  | Binop (Sub, a, b) when exp_is_pointer ctx a && not (exp_is_pointer ctx b)
    ->
      let base, off = decompose_ptr_exp ctx a in
      (base, Linexp.sub off (affine ctx b))
  | AddrOf lv -> addr_of_lval ctx lv
  | Lval _ ->
      check_base_invariant ctx e;
      (e, Linexp.zero)
  | _ -> raise (Bail Non_affine)

and exp_is_pointer ctx (e : exp) : bool =
  try
    match Minic.Typecheck.type_of_exp ctx.fenv e with
    | Tptr _ | Tarray _ -> true
    | _ -> false
  with _ -> false

(* ------------------------------------------------------------------ *)

(* memory-access lvalues in a statement worth protecting, tagged with
   their access mode; reads of plain locals that never have their address
   taken are skipped (they cannot race) *)
let accesses_of_stmt ~(addr_taken : string -> bool) ~(is_local : string -> bool)
    (s : stmt) : (lval * bool) list =
  let acc = ref [] in
  let keep ~write lv =
    match lv with
    | Var v when is_local v && not (addr_taken v) -> ()
    | _ -> acc := (lv, write) :: !acc
  in
  let rec scan_exp = function
    | Const _ -> ()
    | Lval lv -> scan_lval_read lv
    | AddrOf lv -> scan_lval_addr lv
    | Unop (_, e) -> scan_exp e
    | Binop (_, a, b) -> scan_exp a; scan_exp b
  and scan_lval_read lv =
    keep ~write:false lv;
    scan_lval_addr lv
  and scan_lval_addr = function
    | Var _ -> ()
    | Deref e -> scan_exp e
    | Index (lv, e) -> scan_lval_addr lv; scan_exp e
    | Field (lv, _) -> scan_lval_addr lv
    | Arrow (e, _) -> scan_exp e
  in
  (match s.skind with
  | Assign (lv, e) ->
      keep ~write:true lv;
      scan_lval_addr lv;
      scan_exp e
  | Call (ret, _, args) | Builtin (ret, _, args) ->
      Option.iter (fun lv -> keep ~write:true lv; scan_lval_addr lv) ret;
      List.iter scan_exp args
  | If (e, _, _) | While (e, _, _) -> scan_exp e
  | Return (Some e) -> scan_exp e
  | _ -> ());
  !acc

(* address-taken locals of a function *)
let addr_taken_locals (fd : fundec) : (string, unit) Hashtbl.t =
  let tbl = Hashtbl.create 8 in
  let rec scan_exp = function
    | AddrOf (Var v) -> Hashtbl.replace tbl v ()
    | AddrOf lv -> scan_lval lv
    | Lval lv -> scan_lval lv
    | Unop (_, e) -> scan_exp e
    | Binop (_, a, b) -> scan_exp a; scan_exp b
    | Const _ -> ()
  and scan_lval = function
    | Var _ -> ()
    | Deref e -> scan_exp e
    | Index (lv, e) -> scan_lval lv; scan_exp e
    | Field (lv, _) -> scan_lval lv
    | Arrow (e, _) -> scan_exp e
  in
  iter_stmts
    (fun s ->
      match s.skind with
      | Assign (lv, e) -> scan_lval lv; scan_exp e
      | Call (ret, _, args) | Builtin (ret, _, args) ->
          Option.iter scan_lval ret;
          List.iter scan_exp args
      | If (e, _, _) | While (e, _, _) -> scan_exp e
      | Return (Some e) -> scan_exp e
      | _ -> ())
    fd.f_body;
  tbl

(** Analyze a loop nest inside [fd]: [enclosing] is the full chain of
    [While] statements from outermost to the one directly containing the
    racy statements; [target_idx] selects the loop to be guarded (the
    instrumenter tries 0 — the outermost — first, per Section 5.3).

    Address ranges must be evaluable at the {e target} loop's entry:
    symbols are variables not assigned inside the target loop's body
    (induction variables of {e outer} loops are ordinary symbols — they
    are fixed while the target loop runs); induction variables of the
    target loop and of loops nested inside it are eliminated by
    Fourier–Motzkin using their induction constraints.

    Returns [Precise ranges] with deduplicated [(lo, hi)] MiniC address
    expressions for all memory accesses of [racy_sids], or
    [Imprecise reason]. *)
let analyze_loop (p : program) (fd : fundec) ?(target_idx = 0)
    ?(allow_masks = false) ~(enclosing : stmt list) ~(racy_sids : int list) ()
    : result =
  if enclosing = [] then invalid_arg "analyze_loop: empty loop nest";
  if target_idx < 0 || target_idx >= List.length enclosing then
    invalid_arg "analyze_loop: bad target index";
  let target = List.nth enclosing target_idx in
  (* loops from the target inward: their IVs get eliminated *)
  let inner_chain = List.filteri (fun i _ -> i >= target_idx) enclosing in
  let target_body =
    match target.skind with
    | While (_, b, _) -> b
    | _ -> invalid_arg "analyze_loop: target is not a loop"
  in
  try
    (* Intraprocedural only: no calls in the guarded loop. Builtins count
       as calls — in the paper's C they are pthread/libc functions — and
       a loop-lock held across a blocking operation would invite the
       weak-lock timeouts the paper never observes. *)
    iter_stmts
      (fun s ->
        match s.skind with
        | Call _ | Builtin _ -> raise (Bail Has_call)
        | _ -> ())
      target_body;
    let tenv = Minic.Typecheck.env_of_program p in
    let fenv = Minic.Typecheck.fun_env tenv fd in
    let assigned = assigned_vars target_body in
    let ivs = Hashtbl.create 4 in
    List.iter
      (fun (ls : stmt) ->
        match ls.skind with
        | While (_, _, { l_induction = Some ind; _ }) ->
            Hashtbl.replace ivs ind.iv_var ();
            Hashtbl.replace assigned ind.iv_var ()
        | _ -> ())
      inner_chain;
    let ctx =
      {
        fenv;
        structs = p.p_structs;
        ivs;
        assigned;
        allow_masks;
        fresh_bounded = [];
        fresh_count = 0;
      }
    in
    (* Mask extension, variable form: a local whose every assignment in the
       body is [... & c] (and which is written before it is read) always
       holds a value in [0, c] at its uses — treat it as a bounded
       variable to eliminate. This covers Figure 4's
       [my_key = key_from[j] & bb; rank[my_key]++] pattern. *)
    let mask_vars : (string * int) list =
      if not allow_masks then []
      else begin
        let bound : (string, int option) Hashtbl.t = Hashtbl.create 4 in
        iter_stmts
          (fun st ->
            match st.skind with
            | Assign (Var v, e) ->
                let b =
                  match e with
                  | Binop (BAnd, _, Const c) when c >= 0 -> Some c
                  | Binop (BAnd, Const c, _) when c >= 0 -> Some c
                  | _ -> None
                in
                let cur =
                  Option.value (Hashtbl.find_opt bound v) ~default:(Some (-1))
                in
                Hashtbl.replace bound v
                  (match (cur, b) with
                  | Some c0, Some c -> Some (max c0 c)
                  | _ -> None)
            | _ -> ())
          target_body;
        (* written-before-read, in pre-order *)
        let disqualified = Hashtbl.create 4 in
        let written = Hashtbl.create 4 in
        iter_stmts
          (fun st ->
            let reads =
              match st.skind with
              | Assign (_, e) -> value_reads e
              | Call (_, _, args) | Builtin (_, _, args) ->
                  List.concat_map value_reads args
              | If (e, _, _) | While (e, _, _) -> value_reads e
              | Return (Some e) -> value_reads e
              | _ -> []
            in
            List.iter
              (fun v ->
                if not (Hashtbl.mem written v) then
                  Hashtbl.replace disqualified v ())
              reads;
            match st.skind with
            | Assign (Var v, _) -> Hashtbl.replace written v ()
            | _ -> ())
          target_body;
        Hashtbl.fold
          (fun v b acc ->
            match b with
            | Some c when c >= 0 && not (Hashtbl.mem disqualified v) ->
                (v, c) :: acc
            | _ -> acc)
          bound []
      end
    in
    List.iter
      (fun (v, _) ->
        Hashtbl.replace ivs v ();
        Hashtbl.replace assigned v ())
      mask_vars;
    (* build the IV constraint system for the target-and-inner loops *)
    let constraints = ref [] in
    List.iter
      (fun (ls : stmt) ->
        match ls.skind with
        | While (_, _, { l_induction = Some ind; _ }) ->
            let iv = Linexp.var ind.iv_var in
            let init = affine ctx ind.iv_init in
            let limit = affine ctx ind.iv_limit in
            let step =
              match Linexp.const_value (affine ctx ind.iv_step) with
              | Some s -> s
              | None -> raise (Bail Non_affine)
            in
            if step > 0 then begin
              (* init <= iv <= limit - (strict ? 1 : 0) *)
              constraints := Linexp.sub iv init :: !constraints;
              let hi =
                if ind.iv_strict then Linexp.sub limit (Linexp.const 1)
                else limit
              in
              constraints := Linexp.sub hi iv :: !constraints
            end
            else if step < 0 then begin
              (* counting down (the surface parser only produces upward
                 inductions today, but keep the symmetric case) *)
              constraints := Linexp.sub init iv :: !constraints;
              let lo =
                if ind.iv_strict then Linexp.add limit (Linexp.const 1)
                else limit
              in
              constraints := Linexp.sub iv lo :: !constraints
            end
            else raise (Bail Non_affine)
        | _ -> ())
      inner_chain;
    (* bounded mask variables join the constraint system directly *)
    List.iter
      (fun (v, c) ->
        constraints := Linexp.var v :: !constraints;
        constraints := Linexp.sub (Linexp.const c) (Linexp.var v) :: !constraints)
      mask_vars;
    let iv_names = List.of_seq (Hashtbl.to_seq_keys ivs) in
        (* collect accesses of racy statements inside the target loop *)
        let is_local v =
          List.exists (fun d -> d.v_name = v) fd.f_locals
          || List.exists (fun d -> d.v_name = v) fd.f_params
        in
        let taken = addr_taken_locals fd in
        let accs = ref [] in
        iter_stmts
          (fun s ->
            if List.mem s.sid racy_sids then
              accs :=
                accesses_of_stmt
                  ~addr_taken:(Hashtbl.mem taken)
                  ~is_local s
                @ !accs)
          target_body;
        if !accs = [] then Precise []
        else begin
          let ranges =
            List.map
              (fun (lv, write) ->
                ctx.fresh_bounded <- [];
                let base, off = addr_of_lval ctx lv in
                check_base_invariant ctx base;
                (* if the offset mentions an IV without bounds we must
                   fail *)
                let needs_elim =
                  List.filter (fun v -> Hashtbl.mem ivs v) (Linexp.symbols off)
                in
                List.iter
                  (fun v ->
                    if not (List.exists (fun c -> Linexp.coeff_of v c <> 0) !constraints)
                    then raise (Bail No_induction))
                  needs_elim;
                (* any non-IV symbol in the offset must be invariant *)
                List.iter
                  (fun v ->
                    if (not (Hashtbl.mem ivs v)) && not (is_invariant ctx v)
                    then raise (Bail Not_invariant))
                  (Linexp.symbols off);
                let mask_constraints =
                  List.concat_map
                    (fun (v, c) ->
                      [ Linexp.var v; Linexp.sub (Linexp.const c) (Linexp.var v) ])
                    ctx.fresh_bounded
                in
                let elim = iv_names @ List.map fst ctx.fresh_bounded in
                let lowers, uppers =
                  Fm.bounds_of ~elim (mask_constraints @ !constraints) off
                in
                match (lowers, uppers) with
                | lo :: _, hi :: _ ->
                    let add_base l =
                      match Linexp.const_value l with
                      | Some 0 -> base
                      | _ -> Binop (Add, base, Linexp.to_exp l)
                    in
                    { wr_lo = add_base lo; wr_hi = add_base hi; wr_write = write }
                | _ -> raise (Bail Unbounded))
              !accs
          in
          (* structural dedup; a write range subsumes an equal read range *)
          let ranges = List.sort_uniq compare ranges in
          let ranges =
            List.filter
              (fun r ->
                r.wr_write
                || not
                     (List.exists
                        (fun r' ->
                          r'.wr_write && r'.wr_lo = r.wr_lo && r'.wr_hi = r.wr_hi)
                        ranges))
              ranges
          in
      Precise ranges
    end
  with Bail r -> Imprecise r
