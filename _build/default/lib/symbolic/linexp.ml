(** Affine (linear + constant) symbolic expressions over named program
    variables: [c0 + c1*x1 + ... + cn*xn].

    These are the currency of the symbolic bounds analysis (Section 5 of
    the paper, after Rugina–Rinard): loop bounds, induction-variable
    ranges, and accessed-address offsets are all affine forms whose
    symbols are loop-invariant variables. *)

module Smap = Map.Make (String)

type t = { const : int; terms : int Smap.t }
(* invariant: no zero coefficients in [terms] *)

let const c = { const = c; terms = Smap.empty }
let zero = const 0
let var ?(coeff = 1) x =
  if coeff = 0 then zero else { const = 0; terms = Smap.singleton x coeff }

let is_const t = Smap.is_empty t.terms
let const_value t = if is_const t then Some t.const else None

let coeff_of x t = Option.value (Smap.find_opt x t.terms) ~default:0

let symbols t = List.map fst (Smap.bindings t.terms)

let norm terms = Smap.filter (fun _ c -> c <> 0) terms

let add a b =
  {
    const = a.const + b.const;
    terms =
      norm
        (Smap.union (fun _ c1 c2 -> Some (c1 + c2)) a.terms b.terms);
  }

let neg a = { const = -a.const; terms = Smap.map (fun c -> -c) a.terms }
let sub a b = add a (neg b)

let scale k a =
  if k = 0 then zero
  else { const = k * a.const; terms = Smap.map (fun c -> k * c) a.terms }

(** Multiplication is defined only when one operand is constant. *)
let mul a b =
  match (const_value a, const_value b) with
  | Some k, _ -> Some (scale k b)
  | _, Some k -> Some (scale k a)
  | None, None -> None

(** Exact division by a positive constant; defined only when every
    coefficient (and the constant) is divisible. *)
let div_exact a k =
  if k = 0 then None
  else if
    a.const mod k = 0 && Smap.for_all (fun _ c -> c mod k = 0) a.terms
  then Some { const = a.const / k; terms = Smap.map (fun c -> c / k) a.terms }
  else None

let equal a b = a.const = b.const && Smap.equal Int.equal a.terms b.terms
let compare a b =
  match Int.compare a.const b.const with
  | 0 -> Smap.compare Int.compare a.terms b.terms
  | c -> c

(** Substitute [x := e] in [t]. *)
let subst x e t =
  let c = coeff_of x t in
  if c = 0 then t
  else add { t with terms = Smap.remove x t.terms } (scale c e)

(** Evaluate under a full environment; [None] if a symbol is unbound. *)
let eval env t =
  Smap.fold
    (fun x c acc ->
      match (acc, env x) with
      | Some a, Some v -> Some (a + (c * v))
      | _ -> None)
    t.terms (Some t.const)

let pp ppf t =
  let terms = Smap.bindings t.terms in
  if terms = [] then Fmt.int ppf t.const
  else begin
    let first = ref true in
    List.iter
      (fun (x, c) ->
        if !first then begin
          first := false;
          if c = 1 then Fmt.string ppf x
          else if c = -1 then Fmt.pf ppf "-%s" x
          else Fmt.pf ppf "%d*%s" c x
        end
        else if c >= 0 then
          if c = 1 then Fmt.pf ppf " + %s" x else Fmt.pf ppf " + %d*%s" c x
        else if c = -1 then Fmt.pf ppf " - %s" x
        else Fmt.pf ppf " - %d*%s" (-c) x)
      terms;
    if t.const > 0 then Fmt.pf ppf " + %d" t.const
    else if t.const < 0 then Fmt.pf ppf " - %d" (-t.const)
  end

let to_string t = Fmt.str "%a" pp t

(** Convert to a MiniC expression (symbols become variable reads). *)
let to_exp t : Minic.Ast.exp =
  let open Minic.Ast in
  let term x c : exp =
    if c = 1 then Lval (Var x)
    else Binop (Mul, Const c, Lval (Var x))
  in
  let e =
    Smap.fold
      (fun x c acc ->
        match acc with
        | None -> Some (term x c)
        | Some a -> Some (Binop (Add, a, term x c)))
      t.terms None
  in
  match e with
  | None -> Const t.const
  | Some e -> if t.const = 0 then e else Binop (Add, e, Const t.const)
