(** Symbolic address-bounds analysis for racy loops (paper Section 5,
    after Rugina–Rinard): derive, for every memory access of the racy
    statements inside a loop, an address range [lo .. hi] whose symbols
    are invariant in the target loop — so the instrumenter can guard the
    loop with a single loop-lock protecting just that range (Figure 4).

    Intraprocedural: a loop body containing a call (or builtin — in C
    these are library calls) is rejected. Offsets must be affine in the
    induction variables of the enclosing nest; loaded indices and
    unsupported arithmetic yield imprecision, the paper's two sources
    (Section 5.2). *)

type reason =
  | Has_call       (** loop body calls a function: intraprocedural bail *)
  | No_induction   (** offset depends on a loop without a recognized IV *)
  | Non_affine     (** offset not affine (loaded index, modulo, ...) *)
  | Unbounded      (** FM produced no finite symbolic bound *)
  | Not_invariant  (** base pointer or bound symbol assigned in the loop *)

val pp_reason : reason Fmt.t

type result =
  | Precise of Minic.Ast.warange list
      (** inclusive address ranges with access mode, evaluable at the
          target loop's entry *)
  | Imprecise of reason

(** [analyze_loop p fd ~enclosing ~racy_sids ()] — [enclosing] is the
    chain of [While] statements from outermost to the loop directly
    containing the racy statements; [target_idx] selects the loop to
    guard (the planner tries 0, the outermost, first — paper
    Section 5.3). [allow_masks] enables the sound [e & c ∈ [0,c]]
    extension (off by default; the paper treats masks as unsupported). *)
val analyze_loop :
  Minic.Ast.program ->
  Minic.Ast.fundec ->
  ?target_idx:int ->
  ?allow_masks:bool ->
  enclosing:Minic.Ast.stmt list ->
  racy_sids:int list ->
  unit ->
  result
