lib/symbolic/fm.mli: Fmt Linexp
