lib/symbolic/linexp.ml: Fmt Int List Map Minic Option String
