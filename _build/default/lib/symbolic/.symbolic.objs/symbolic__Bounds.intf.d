lib/symbolic/bounds.mli: Fmt Minic
