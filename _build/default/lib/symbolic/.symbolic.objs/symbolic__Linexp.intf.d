lib/symbolic/linexp.mli: Fmt Minic
