lib/symbolic/fm.ml: Fmt Linexp List
