lib/symbolic/bounds.ml: Fm Fmt Hashtbl Linexp List Minic Option
