(** Affine symbolic expressions [c0 + c1*x1 + ... + cn*xn] over named
    program variables — the currency of the symbolic bounds analysis
    (paper Section 5, after Rugina–Rinard). *)

type t

val const : int -> t
val zero : t
val var : ?coeff:int -> string -> t

val is_const : t -> bool
val const_value : t -> int option
val coeff_of : string -> t -> int
val symbols : t -> string list

val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : int -> t -> t

(** Defined only when one operand is constant. *)
val mul : t -> t -> t option

(** Exact division by a positive constant; defined only when every
    coefficient (and the constant) divides. *)
val div_exact : t -> int -> t option

val equal : t -> t -> bool
val compare : t -> t -> int

(** Substitute [x := e]. *)
val subst : string -> t -> t -> t

(** Evaluate under an environment; [None] if a symbol is unbound. *)
val eval : (string -> int option) -> t -> int option

val pp : t Fmt.t
val to_string : t -> string

(** Convert to a MiniC expression (symbols become variable reads). *)
val to_exp : t -> Minic.Ast.exp
