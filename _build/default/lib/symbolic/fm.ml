(** Fourier–Motzkin elimination over affine inequalities.

    This is the project's substitute for the paper's use of lpsolve
    (Section 6.1): Chimera reduces symbolic-bounds questions to small
    linear programs; the systems involved are tiny (a handful of induction
    variables and loop-invariant symbols), for which exact FM elimination
    is both simpler and complete.

    An inequality is represented as an affine expression [e] meaning
    [e >= 0]. Eliminating variable [x] combines every pair of a lower
    bound ([a*x <= e], a > 0 appearing as [e - a*x >= 0]... in our
    encoding an inequality with positive coefficient on [x] is a lower
    bound on [x], negative is an upper bound) and produces the implied
    [x]-free consequences. Over the integers FM is an over-approximation
    of the projection, which is the sound direction for address ranges. *)

type ineq = Linexp.t (* meaning: e >= 0 *)

let pp_ineq ppf e = Fmt.pf ppf "%a >= 0" Linexp.pp e

(** [eliminate x ineqs]: project out [x]. *)
let eliminate (x : string) (ineqs : ineq list) : ineq list =
  let lowers, uppers, rest =
    List.fold_left
      (fun (lo, up, rest) e ->
        let c = Linexp.coeff_of x e in
        if c > 0 then (e :: lo, up, rest)
        else if c < 0 then (lo, e :: up, rest)
        else (lo, up, e :: rest))
      ([], [], []) ineqs
  in
  (* lower: a*x + f >= 0  (a>0)  =>  x >= -f/a
     upper: -b*x + g >= 0 (b>0)  =>  x <= g/b
     combine: a*g - (-b)*(-f) ... cross-multiply: b*f + a*g >= 0 *)
  let combos =
    List.concat_map
      (fun lo_e ->
        let a = Linexp.coeff_of x lo_e in
        let f = Linexp.sub lo_e (Linexp.var ~coeff:a x) in
        List.map
          (fun up_e ->
            let b = -Linexp.coeff_of x up_e in
            let g = Linexp.add up_e (Linexp.var ~coeff:b x) in
            Linexp.add (Linexp.scale b f) (Linexp.scale a g))
          uppers)
      lowers
  in
  List.sort_uniq Linexp.compare (combos @ rest)

let eliminate_all (xs : string list) (ineqs : ineq list) : ineq list =
  List.fold_left (fun acc x -> eliminate x acc) ineqs xs

(** Detect a trivially false system (constant inequality [c >= 0] with
    [c < 0]) after full elimination — used to recognize empty loop
    ranges. *)
let infeasible (ineqs : ineq list) : bool =
  List.exists
    (fun e ->
      match Linexp.const_value e with Some c -> c < 0 | None -> false)
    ineqs

(** Symbolic bounds of expression [target] subject to [ineqs], eliminating
    [elim] (the induction variables). Returns (lowers, uppers): affine
    expressions L, U over the remaining symbols with L <= target <= U.

    Implementation: introduce a fresh symbol [t = target] (as two
    inequalities), eliminate [elim], then read off bounds on [t] whose
    coefficient divides exactly. *)
let bounds_of ~(elim : string list) (ineqs : ineq list) (target : Linexp.t) :
    Linexp.t list * Linexp.t list =
  let tsym = "$target" in
  let t = Linexp.var tsym in
  let sys =
    Linexp.sub t target (* t - target >= 0 *)
    :: Linexp.sub target t (* target - t >= 0 *)
    :: ineqs
  in
  let projected = eliminate_all elim sys in
  let lowers = ref [] and uppers = ref [] in
  List.iter
    (fun e ->
      let c = Linexp.coeff_of tsym e in
      if c > 0 then begin
        (* c*t + f >= 0 => t >= -f/c *)
        let f = Linexp.sub e (Linexp.var ~coeff:c tsym) in
        match Linexp.div_exact (Linexp.neg f) c with
        | Some b -> lowers := b :: !lowers
        | None -> ()
      end
      else if c < 0 then begin
        (* -b*t + g >= 0 => t <= g/b *)
        let b = -c in
        let g = Linexp.add e (Linexp.var ~coeff:b tsym) in
        match Linexp.div_exact g b with
        | Some u -> uppers := u :: !uppers
        | None -> ()
      end)
    projected;
  (List.sort_uniq Linexp.compare !lowers, List.sort_uniq Linexp.compare !uppers)
