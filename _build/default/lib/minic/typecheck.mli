(** Type resolution and light checking for MiniC: builds symbol tables,
    types every expression (needed by the interpreter for
    pointer-arithmetic scaling and by the analyses for object
    resolution), rewrites direct calls through function-pointer
    variables into [ViaPtr], and rejects unbound names / bad arities /
    duplicate definitions / missing [main]. *)

open Ast

exception Type_error of string * loc

type env = {
  prog : program;
  structs : (string, struct_decl) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  funs : (string, fundec) Hashtbl.t;
  locals : (string, ty) Hashtbl.t;  (** current function's params+locals *)
  fname : string;
}

val env_of_program : program -> env

(** Environment for a function body (params + locals in scope). *)
val fun_env : env -> fundec -> env

val lookup_var : env -> string -> ty option
val type_of_lval : env -> lval -> ty
val type_of_exp : env -> exp -> ty

(** Element size in cells for indexing through a value of this type. *)
val elem_size : env -> ty -> int

(** Check and rewrite a program. Raises {!Type_error}. *)
val check : program -> program

(** [parse_and_check src] — the front-end entry point. *)
val parse_and_check : ?file:string -> string -> program
