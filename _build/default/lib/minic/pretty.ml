(** Pretty-printer for MiniC programs. Emits valid MiniC surface syntax for
    uninstrumented programs (used by the parse/print roundtrip property
    tests); weak-lock regions inserted by the instrumenter print as
    [__weak_enter]/[__weak_exit] pseudo-calls for human inspection. *)

open Ast

let unop_str = function Neg -> "-" | LNot -> "!" | BNot -> "~"

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | BAnd -> "&" | BOr -> "|" | BXor -> "^" | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"

let binop_prec = function
  | Mul | Div | Mod -> 10
  | Add | Sub -> 9
  | Shl | Shr -> 8
  | Lt | Le | Gt | Ge -> 7
  | Eq | Ne -> 6
  | BAnd -> 5
  | BXor -> 4
  | BOr -> 3
  | LAnd -> 2
  | LOr -> 1

let rec pp_exp_prec prec ppf e =
  match e with
  | Const n ->
      if n < 0 then Fmt.pf ppf "(%d)" n else Fmt.int ppf n
  | Lval lv -> pp_lval ppf lv
  | AddrOf lv -> Fmt.pf ppf "&%a" pp_lval_atom lv
  | Unop (op, e) -> Fmt.pf ppf "%s%a" (unop_str op) (pp_exp_prec 11) e
  | Binop (op, a, b) ->
      let p = binop_prec op in
      let body ppf () =
        Fmt.pf ppf "%a %s %a" (pp_exp_prec p) a (binop_str op)
          (pp_exp_prec (p + 1)) b
      in
      if p < prec then Fmt.pf ppf "(%a)" body () else body ppf ()

and pp_exp ppf e = pp_exp_prec 0 ppf e

and pp_lval ppf = function
  | Var v -> Fmt.string ppf v
  | Deref e -> Fmt.pf ppf "*%a" (pp_exp_prec 11) e
  | Index (lv, e) -> Fmt.pf ppf "%a[%a]" pp_lval_atom lv pp_exp e
  | Field (lv, f) -> Fmt.pf ppf "%a.%s" pp_lval_atom lv f
  | Arrow (e, f) -> Fmt.pf ppf "%a->%s" (pp_exp_prec 11) e f

(* lvalue in a position that binds tighter than postfix: parenthesize
   derefs *)
and pp_lval_atom ppf lv =
  match lv with
  | Deref _ -> Fmt.pf ppf "(%a)" pp_lval lv
  | _ -> pp_lval ppf lv

let pp_ty_decl ppf (ty, name) =
  (* prints "int x", "int *p", "int a[10]", "int (*fp)(int)" *)
  let rec base = function
    | Tarray (t, _) -> base t
    | Tptr (Tfun _) as t -> t
    | Tptr t -> base t
    | t -> t
  in
  let rec dims ppf = function
    | Tarray (t, n) ->
        (* innermost dim prints last *)
        Fmt.pf ppf "[%d]%a" n dims t
    | _ -> ()
  in
  let rec stars ppf = function
    | Tptr (Tfun _) -> ()
    | Tptr t -> Fmt.pf ppf "%a*" stars t
    | _ -> ()
  in
  match ty with
  | Tptr (Tfun (r, args)) ->
      Fmt.pf ppf "%a (*%s)(%a)" pp_ty r name Fmt.(list ~sep:comma pp_ty) args
  | _ ->
      let rec outer_dims ppf t =
        match t with Tarray (t', n) -> Fmt.pf ppf "[%d]%a" n outer_dims t' | _ -> ()
      in
      ignore dims;
      Fmt.pf ppf "%a %a%s%a" pp_ty (base ty) stars ty name outer_dims ty

let rec pp_stmt ind ppf (s : stmt) =
  let pad = String.make ind ' ' in
  match s.skind with
  | Assign (lv, e) -> Fmt.pf ppf "%s%a = %a;" pad pp_lval lv pp_exp e
  | Call (ret, tgt, args) ->
      let pp_tgt ppf = function
        | Direct f -> Fmt.string ppf f
        | ViaPtr e -> Fmt.pf ppf "(*%a)" pp_exp e
      in
      (match ret with
      | None -> Fmt.pf ppf "%s%a(%a);" pad pp_tgt tgt Fmt.(list ~sep:comma pp_exp) args
      | Some lv ->
          Fmt.pf ppf "%s%a = %a(%a);" pad pp_lval lv pp_tgt tgt
            Fmt.(list ~sep:comma pp_exp) args)
  | Builtin (ret, b, args) -> (
      match ret with
      | None ->
          Fmt.pf ppf "%s%s(%a);" pad (builtin_name b)
            Fmt.(list ~sep:comma pp_exp) args
      | Some lv ->
          Fmt.pf ppf "%s%a = %s(%a);" pad pp_lval lv (builtin_name b)
            Fmt.(list ~sep:comma pp_exp) args)
  | If (c, t, []) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s}" pad pp_exp c (pp_block (ind + 2)) t pad
  | If (c, t, e) ->
      Fmt.pf ppf "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_exp c
        (pp_block (ind + 2)) t pad (pp_block (ind + 2)) e pad
  | While (c, b, li) ->
      Fmt.pf ppf "%swhile (%a) { /* loop %d */@\n%a@\n%s}" pad pp_exp c li.lid
        (pp_block (ind + 2)) b pad
  | Return None -> Fmt.pf ppf "%sreturn;" pad
  | Return (Some e) -> Fmt.pf ppf "%sreturn %a;" pad pp_exp e
  | Break -> Fmt.pf ppf "%sbreak;" pad
  | Continue -> Fmt.pf ppf "%scontinue;" pad
  | WeakEnter acqs ->
      let pp_range ppf (r : warange) =
        Fmt.pf ppf "[%a..%a]%s" pp_exp r.wr_lo pp_exp r.wr_hi
          (if r.wr_write then "w" else "r")
      in
      let pp_acq ppf a =
        match a.wa_ranges with
        | [] -> pp_weak_lock ppf a.wa_lock
        | rs ->
            Fmt.pf ppf "%a:%a" pp_weak_lock a.wa_lock
              Fmt.(list ~sep:(any "+") pp_range)
              rs
      in
      Fmt.pf ppf "%s__weak_enter(%a);" pad Fmt.(list ~sep:comma pp_acq) acqs
  | WeakExit locks ->
      Fmt.pf ppf "%s__weak_exit(%a);" pad
        Fmt.(list ~sep:comma pp_weak_lock) locks

and pp_block ind ppf (b : block) =
  Fmt.pf ppf "%a" Fmt.(list ~sep:(any "@\n") (pp_stmt ind)) b

let pp_fundec ppf (f : fundec) =
  let pp_param ppf vd = pp_ty_decl ppf (vd.v_ty, vd.v_name) in
  Fmt.pf ppf "%a %s(%a) {@\n" pp_ty f.f_ret f.f_name
    Fmt.(list ~sep:comma pp_param)
    f.f_params;
  List.iter (fun vd -> Fmt.pf ppf "  %a;@\n" pp_ty_decl (vd.v_ty, vd.v_name)) f.f_locals;
  Fmt.pf ppf "%a@\n}@\n" (pp_block 2) f.f_body

let pp_global ppf (g : global) =
  match g.g_init with
  | None -> Fmt.pf ppf "%a;@\n" pp_ty_decl (g.g_ty, g.g_name)
  | Some [ v ] -> Fmt.pf ppf "%a = %d;@\n" pp_ty_decl (g.g_ty, g.g_name) v
  | Some vs ->
      Fmt.pf ppf "%a = {%a};@\n" pp_ty_decl (g.g_ty, g.g_name)
        Fmt.(list ~sep:comma int)
        vs

let pp_struct ppf (s : struct_decl) =
  Fmt.pf ppf "struct %s {@\n" s.s_name;
  List.iter (fun (f, t) -> Fmt.pf ppf "  %a;@\n" pp_ty_decl (t, f)) s.s_fields;
  Fmt.pf ppf "};@\n"

let pp_program ppf (p : program) =
  List.iter (pp_struct ppf) p.p_structs;
  List.iter (pp_global ppf) p.p_globals;
  Fmt.pf ppf "@\n";
  List.iter (fun f -> Fmt.pf ppf "%a@\n" pp_fundec f) p.p_funs

let program_to_string p = Fmt.str "%a" pp_program p
