(** Recursive-descent parser for MiniC.

    The grammar is a C subset: struct declarations, global variables,
    function definitions, local declarations (hoisted to the function, C89
    style, but allowed at the head of any block), structured statements
    ([if]/[while]/[for]/[return]/[break]/[continue]), assignments,
    compound assignment ([+=], [-=], [++], [--]), and calls. [for] loops
    are lowered to [while] but their induction pattern is preserved in
    {!Ast.loop_info} for the symbolic bounds analysis. *)

open Ast

exception Parse_error of string * int

type cursor = {
  mutable toks : (Lexer.token * int) list;
  file : string;
}

let err cur msg =
  let line = match cur.toks with (_, l) :: _ -> l | [] -> 0 in
  raise (Parse_error (msg, line))

let peek cur = match cur.toks with (t, _) :: _ -> t | [] -> Lexer.EOF
let peek2 cur = match cur.toks with _ :: (t, _) :: _ -> t | _ -> Lexer.EOF
let peek3 cur = match cur.toks with _ :: _ :: (t, _) :: _ -> t | _ -> Lexer.EOF
let cur_line cur = match cur.toks with (_, l) :: _ -> l | [] -> 0
let cur_loc cur = { file = cur.file; line = cur_line cur }

let advance cur =
  match cur.toks with
  | _ :: rest -> cur.toks <- rest
  | [] -> ()

let eat cur t =
  if peek cur = t then advance cur
  else
    err cur
      (Fmt.str "expected %a but found %a" Lexer.pp_token t Lexer.pp_token
         (peek cur))

let eat_ident cur =
  match peek cur with
  | Lexer.IDENT s -> advance cur; s
  | t -> err cur (Fmt.str "expected identifier, found %a" Lexer.pp_token t)

let eat_int cur =
  match peek cur with
  | Lexer.INT n -> advance cur; n
  | t -> err cur (Fmt.str "expected integer, found %a" Lexer.pp_token t)

(* ------------------------------------------------------------------ *)
(* Types and declarators *)

let is_type_start cur =
  match peek cur with
  | Lexer.KW_INT | Lexer.KW_VOID -> true
  | Lexer.KW_STRUCT -> (
      (* "struct S {" is a declaration; "struct S x" is a type use. Both
         start a type; the program-level parser disambiguates. *)
      match peek2 cur with Lexer.IDENT _ -> true | _ -> false)
  | _ -> false

let parse_base_ty cur =
  match peek cur with
  | Lexer.KW_INT -> advance cur; Tint
  | Lexer.KW_VOID -> advance cur; Tvoid
  | Lexer.KW_STRUCT ->
      advance cur;
      let name = eat_ident cur in
      Tstruct name
  | t -> err cur (Fmt.str "expected type, found %a" Lexer.pp_token t)

let rec parse_stars cur ty =
  if peek cur = Lexer.STAR then (advance cur; parse_stars cur (Tptr ty)) else ty

(** Parse a declarator after the base type: either a plain
    [name\[n\]\[m\]...] or a function-pointer [( * name)(ty, ...)] form.
    Returns (name, type). *)
let parse_declarator cur base =
  if peek cur = Lexer.LPAREN && peek2 cur = Lexer.STAR then begin
    (* function pointer: base ( * name)(args) *)
    eat cur Lexer.LPAREN;
    eat cur Lexer.STAR;
    let name = eat_ident cur in
    eat cur Lexer.RPAREN;
    eat cur Lexer.LPAREN;
    let args = ref [] in
    if peek cur <> Lexer.RPAREN then begin
      let rec loop () =
        let t = parse_stars cur (parse_base_ty cur) in
        (* parameter name in a prototype position is optional *)
        (match peek cur with Lexer.IDENT _ -> advance cur | _ -> ());
        args := t :: !args;
        if peek cur = Lexer.COMMA then (advance cur; loop ())
      in
      loop ()
    end;
    eat cur Lexer.RPAREN;
    (name, Tptr (Tfun (base, List.rev !args)))
  end
  else begin
    let name = eat_ident cur in
    let rec dims acc =
      if peek cur = Lexer.LBRACKET then begin
        advance cur;
        let n = eat_int cur in
        eat cur Lexer.RBRACKET;
        dims (n :: acc)
      end
      else acc
    in
    let ds = dims [] in
    (* int a[2][3] is array of 2 arrays of 3: fold outermost-last *)
    let ty = List.fold_left (fun t n -> Tarray (t, n)) base ds in
    (name, ty)
  end

(* ------------------------------------------------------------------ *)
(* Expressions *)

let rec parse_exp cur = parse_binop cur 0

and binop_of_token = function
  | Lexer.OROR -> Some (LOr, 1)
  | Lexer.ANDAND -> Some (LAnd, 2)
  | Lexer.PIPE -> Some (BOr, 3)
  | Lexer.CARET -> Some (BXor, 4)
  | Lexer.AMP -> Some (BAnd, 5)
  | Lexer.EQEQ -> Some (Eq, 6)
  | Lexer.NEQ -> Some (Ne, 6)
  | Lexer.LT -> Some (Lt, 7)
  | Lexer.LE -> Some (Le, 7)
  | Lexer.GT -> Some (Gt, 7)
  | Lexer.GE -> Some (Ge, 7)
  | Lexer.SHL -> Some (Shl, 8)
  | Lexer.SHR -> Some (Shr, 8)
  | Lexer.PLUS -> Some (Add, 9)
  | Lexer.MINUS -> Some (Sub, 9)
  | Lexer.STAR -> Some (Mul, 10)
  | Lexer.SLASH -> Some (Div, 10)
  | Lexer.PERCENT -> Some (Mod, 10)
  | _ -> None

and parse_binop cur min_prec =
  let lhs = ref (parse_unary cur) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek cur) with
    | Some (op, prec) when prec >= min_prec ->
        advance cur;
        let rhs = parse_binop cur (prec + 1) in
        lhs := Binop (op, !lhs, rhs)
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary cur =
  match peek cur with
  | Lexer.MINUS -> advance cur; Unop (Neg, parse_unary cur)
  | Lexer.BANG -> advance cur; Unop (LNot, parse_unary cur)
  | Lexer.TILDE -> advance cur; Unop (BNot, parse_unary cur)
  | Lexer.STAR ->
      advance cur;
      let e = parse_unary cur in
      Lval (Deref e)
  | Lexer.AMP ->
      advance cur;
      let e = parse_unary cur in
      (match e with
      | Lval lv -> AddrOf lv
      | _ -> err cur "& applied to a non-lvalue")
  | _ -> parse_postfix cur

and parse_postfix cur =
  let e = ref (parse_primary cur) in
  let continue_ = ref true in
  while !continue_ do
    match peek cur with
    | Lexer.LBRACKET ->
        advance cur;
        let idx = parse_exp cur in
        eat cur Lexer.RBRACKET;
        (match !e with
        | Lval lv -> e := Lval (Index (lv, idx))
        | _ -> err cur "indexing a non-lvalue")
    | Lexer.DOT ->
        advance cur;
        let f = eat_ident cur in
        (match !e with
        | Lval lv -> e := Lval (Field (lv, f))
        | _ -> err cur ". applied to a non-lvalue")
    | Lexer.ARROW ->
        advance cur;
        let f = eat_ident cur in
        e := Lval (Arrow (!e, f))
    | _ -> continue_ := false
  done;
  !e

and parse_primary cur =
  match peek cur with
  | Lexer.INT n -> advance cur; Const n
  | Lexer.IDENT v -> advance cur; Lval (Var v)
  | Lexer.LPAREN ->
      advance cur;
      let e = parse_exp cur in
      eat cur Lexer.RPAREN;
      e
  | t -> err cur (Fmt.str "unexpected token %a in expression" Lexer.pp_token t)

(* ------------------------------------------------------------------ *)
(* Statements *)

let as_lval cur = function
  | Lval lv -> lv
  | _ -> err cur "expected an lvalue"

let parse_args cur =
  eat cur Lexer.LPAREN;
  let args = ref [] in
  if peek cur <> Lexer.RPAREN then begin
    let rec loop () =
      args := parse_exp cur :: !args;
      if peek cur = Lexer.COMMA then (advance cur; loop ())
    in
    loop ()
  end;
  eat cur Lexer.RPAREN;
  List.rev !args

(** Make the call statement-kind for target name [f]: builtins are
    recognized by name, everything else is a direct call (the typechecker
    rewrites direct calls through function-pointer variables into
    [ViaPtr]). *)
let mk_call ret f args =
  match builtin_of_name f with
  | Some b -> Builtin (ret, b, args)
  | None -> Call (ret, Direct f, args)

(** A "simple" statement: assignment, compound assignment, or call.
    Does not consume the trailing semicolon. *)
let parse_simple cur : stmt_kind =
  let loc_is_call =
    match (peek cur, peek2 cur) with
    | Lexer.IDENT _, Lexer.LPAREN -> true
    | _ -> false
  in
  if loc_is_call then begin
    let f = eat_ident cur in
    let args = parse_args cur in
    mk_call None f args
  end
  else if peek cur = Lexer.LPAREN && peek2 cur = Lexer.STAR then begin
    (* function-pointer call statement *)
    eat cur Lexer.LPAREN;
    eat cur Lexer.STAR;
    let e = parse_exp cur in
    eat cur Lexer.RPAREN;
    let args = parse_args cur in
    Call (None, ViaPtr e, args)
  end
  else begin
    let lhs_e = parse_unary cur in
    let lhs = as_lval cur lhs_e in
    match peek cur with
    | Lexer.EQ -> (
        advance cur;
        (* rhs: call or expression *)
        match (peek cur, peek2 cur) with
        | Lexer.IDENT f, Lexer.LPAREN ->
            advance cur;
            let args = parse_args cur in
            mk_call (Some lhs) f args
        | Lexer.LPAREN, Lexer.STAR -> (
            (* Could be a function-pointer call or a parenthesized deref
               expression; decide by trying the call shape and
               backtracking otherwise. *)
            let saved = cur.toks in
            eat cur Lexer.LPAREN;
            eat cur Lexer.STAR;
            let e = parse_exp cur in
            if peek cur = Lexer.RPAREN && peek2 cur = Lexer.LPAREN then begin
              eat cur Lexer.RPAREN;
              let args = parse_args cur in
              Call (Some lhs, ViaPtr e, args)
            end
            else begin
              cur.toks <- saved;
              let rhs = parse_exp cur in
              Assign (lhs, rhs)
            end)
        | _ ->
            let rhs = parse_exp cur in
            Assign (lhs, rhs))
    | Lexer.PLUSEQ ->
        advance cur;
        let rhs = parse_exp cur in
        Assign (lhs, Binop (Add, Lval lhs, rhs))
    | Lexer.MINUSEQ ->
        advance cur;
        let rhs = parse_exp cur in
        Assign (lhs, Binop (Sub, Lval lhs, rhs))
    | Lexer.PLUSPLUS ->
        advance cur;
        Assign (lhs, Binop (Add, Lval lhs, Const 1))
    | Lexer.MINUSMINUS ->
        advance cur;
        Assign (lhs, Binop (Sub, Lval lhs, Const 1))
    | t -> err cur (Fmt.str "unexpected token %a in statement" Lexer.pp_token t)
  end

(** Recognize the induction pattern of a [for] loop:
    [for (i = init; i < limit; i += step)] (or [<=], [i++]). *)
let induction_of_for (init : stmt_kind option) (cond : exp option)
    (step : stmt_kind option) : induction option =
  match (init, cond, step) with
  | ( Some (Assign (Var i1, init_e)),
      Some (Binop (((Lt | Le) as cmp), Lval (Var i2), limit)),
      Some (Assign (Var i3, Binop (Add, Lval (Var i4), step_e))) )
    when i1 = i2 && i2 = i3 && i3 = i4 ->
      Some
        {
          iv_var = i1;
          iv_init = init_e;
          iv_limit = limit;
          iv_strict = (cmp = Lt);
          iv_step = step_e;
        }
  | _ -> None

let rec parse_stmt cur (locals : var_decl list ref) : stmt list =
  let loc = cur_loc cur in
  let mk skind = { sid = Fresh.next_sid (); skind; sloc = loc } in
  match peek cur with
  | Lexer.SEMI -> advance cur; []
  | Lexer.LBRACE ->
      (* naked block: flatten *)
      parse_block cur locals
  | Lexer.KW_IF ->
      advance cur;
      eat cur Lexer.LPAREN;
      let c = parse_exp cur in
      eat cur Lexer.RPAREN;
      let then_b = parse_stmt_or_block cur locals in
      let else_b =
        if peek cur = Lexer.KW_ELSE then (advance cur; parse_stmt_or_block cur locals)
        else []
      in
      [ mk (If (c, then_b, else_b)) ]
  | Lexer.KW_WHILE ->
      advance cur;
      eat cur Lexer.LPAREN;
      let c = parse_exp cur in
      eat cur Lexer.RPAREN;
      let body = parse_stmt_or_block cur locals in
      [ mk (While (c, body, { lid = Fresh.next_lid (); l_induction = None; l_step = None })) ]
  | Lexer.KW_FOR ->
      advance cur;
      eat cur Lexer.LPAREN;
      let init =
        if peek cur = Lexer.SEMI then None else Some (parse_simple cur)
      in
      eat cur Lexer.SEMI;
      let cond = if peek cur = Lexer.SEMI then None else Some (parse_exp cur) in
      eat cur Lexer.SEMI;
      let step =
        if peek cur = Lexer.RPAREN then None else Some (parse_simple cur)
      in
      eat cur Lexer.RPAREN;
      let body = parse_stmt_or_block cur locals in
      let ind = induction_of_for init cond step in
      let cond_e = Option.value cond ~default:(Const 1) in
      let step_stmt = Option.map mk step in
      let body_with_step =
        match step_stmt with None -> body | Some st -> body @ [ st ]
      in
      let while_s =
        mk
          (While
             ( cond_e,
               body_with_step,
               { lid = Fresh.next_lid (); l_induction = ind; l_step = step_stmt } ))
      in
      (match init with None -> [ while_s ] | Some sk -> [ mk sk; while_s ])
  | Lexer.KW_RETURN ->
      advance cur;
      let e = if peek cur = Lexer.SEMI then None else Some (parse_exp cur) in
      eat cur Lexer.SEMI;
      [ mk (Return e) ]
  | Lexer.KW_BREAK ->
      advance cur; eat cur Lexer.SEMI; [ mk Break ]
  | Lexer.KW_CONTINUE ->
      advance cur; eat cur Lexer.SEMI; [ mk Continue ]
  | _ when is_type_start cur ->
      (* local declaration, possibly with initializer *)
      let base = parse_stars cur (parse_base_ty cur) in
      let rec decls acc =
        let name, ty = parse_declarator cur base in
        locals := { v_name = name; v_ty = ty; v_loc = loc } :: !locals;
        let acc =
          if peek cur = Lexer.EQ then begin
            advance cur;
            match (peek cur, peek2 cur) with
            | Lexer.IDENT f, Lexer.LPAREN ->
                advance cur;
                let args = parse_args cur in
                mk (mk_call (Some (Var name)) f args) :: acc
            | _ ->
                let e = parse_exp cur in
                mk (Assign (Var name, e)) :: acc
          end
          else acc
        in
        if peek cur = Lexer.COMMA then (advance cur; decls acc) else acc
      in
      let stmts = decls [] in
      eat cur Lexer.SEMI;
      List.rev stmts
  | _ ->
      let sk = parse_simple cur in
      eat cur Lexer.SEMI;
      [ mk sk ]

and parse_stmt_or_block cur locals : block =
  if peek cur = Lexer.LBRACE then parse_block cur locals
  else parse_stmt cur locals

and parse_block cur locals : block =
  eat cur Lexer.LBRACE;
  let stmts = ref [] in
  while peek cur <> Lexer.RBRACE do
    stmts := !stmts @ parse_stmt cur locals
  done;
  eat cur Lexer.RBRACE;
  !stmts

(* ------------------------------------------------------------------ *)
(* Top level *)

let parse_struct_decl cur : struct_decl =
  eat cur Lexer.KW_STRUCT;
  let name = eat_ident cur in
  eat cur Lexer.LBRACE;
  let fields = ref [] in
  while peek cur <> Lexer.RBRACE do
    let base = parse_stars cur (parse_base_ty cur) in
    let fname, fty = parse_declarator cur base in
    fields := (fname, fty) :: !fields;
    eat cur Lexer.SEMI
  done;
  eat cur Lexer.RBRACE;
  eat cur Lexer.SEMI;
  { s_name = name; s_fields = List.rev !fields }

let parse_params cur : var_decl list =
  eat cur Lexer.LPAREN;
  let ps = ref [] in
  if peek cur = Lexer.KW_VOID && peek2 cur = Lexer.RPAREN then advance cur
  else if peek cur <> Lexer.RPAREN then begin
    let rec loop () =
      let loc = cur_loc cur in
      let base = parse_stars cur (parse_base_ty cur) in
      let name, ty = parse_declarator cur base in
      ps := { v_name = name; v_ty = ty; v_loc = loc } :: !ps;
      if peek cur = Lexer.COMMA then (advance cur; loop ())
    in
    loop ()
  end;
  eat cur Lexer.RPAREN;
  List.rev !ps

let parse_init cur : int list =
  if peek cur = Lexer.LBRACE then begin
    advance cur;
    let vals = ref [] in
    if peek cur <> Lexer.RBRACE then begin
      let rec loop () =
        let neg = peek cur = Lexer.MINUS in
        if neg then advance cur;
        let n = eat_int cur in
        vals := (if neg then -n else n) :: !vals;
        if peek cur = Lexer.COMMA then (advance cur; loop ())
      in
      loop ()
    end;
    eat cur Lexer.RBRACE;
    List.rev !vals
  end
  else begin
    let neg = peek cur = Lexer.MINUS in
    if neg then advance cur;
    let n = eat_int cur in
    [ (if neg then -n else n) ]
  end

(** Parse a complete program. Statement and loop ids are assigned from the
    global {!Ast.Fresh} counters, which this function resets. *)
let parse ?(file = "<string>") (src : string) : program =
  Fresh.reset ();
  let cur = { toks = Lexer.tokenize src; file } in
  let structs = ref [] in
  let globals = ref [] in
  let funs = ref [] in
  while peek cur <> Lexer.EOF do
    if peek cur = Lexer.KW_STRUCT && peek3 cur = Lexer.LBRACE then
      structs := parse_struct_decl cur :: !structs
    else begin
      let loc = cur_loc cur in
      let base = parse_stars cur (parse_base_ty cur) in
      let name, ty = parse_declarator cur base in
      if peek cur = Lexer.LPAREN then begin
        (* function definition *)
        let params = parse_params cur in
        let locals = ref [] in
        let body = parse_block cur locals in
        funs :=
          {
            f_name = name;
            f_ret = ty;
            f_params = params;
            f_locals = List.rev !locals;
            f_body = body;
            f_loc = loc;
          }
          :: !funs
      end
      else begin
        let init =
          if peek cur = Lexer.EQ then (advance cur; Some (parse_init cur))
          else None
        in
        eat cur Lexer.SEMI;
        globals := { g_name = name; g_ty = ty; g_init = init; g_loc = loc } :: !globals
      end
    end
  done;
  {
    p_structs = List.rev !structs;
    p_globals = List.rev !globals;
    p_funs = List.rev !funs;
  }
