(** Recursive-descent parser for MiniC (a C89-flavoured subset; see
    README). [for] loops are lowered to [while] with their induction
    pattern and step statement preserved in {!Ast.loop_info}; calls are
    statements. *)

exception Parse_error of string * int  (** message, 1-based line *)

(** Parse a complete program. Statement and loop ids are assigned from
    the global {!Ast.Fresh} counters, which this function resets.
    Raises {!Parse_error} / {!Lexer.Lex_error}. *)
val parse : ?file:string -> string -> Ast.program
