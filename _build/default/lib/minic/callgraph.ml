(** Call graph for MiniC programs.

    Direct calls resolve trivially. Calls and [spawn]s through function
    pointers resolve via a caller-supplied [resolve] oracle (in the full
    pipeline this is Andersen's points-to analysis; the sound default
    returns every address-taken function). The graph also records thread
    entry points ([spawn] targets) and whether each spawn site can execute
    more than once (inside a loop or in a function called more than once),
    which the race detector needs to decide if a single thread root can
    race with itself. *)

open Ast

type spawn_site = {
  sp_sid : int;
  sp_caller : string;
  sp_targets : string list;
  sp_in_loop : bool;
}

type t = {
  cg_calls : (string, string list) Hashtbl.t;  (** caller -> callees *)
  cg_callers : (string, string list) Hashtbl.t;
  cg_spawns : spawn_site list;
  cg_roots : string list;  (** thread entry points: main + spawn targets *)
}

let add_multi tbl k v =
  let cur = Option.value (Hashtbl.find_opt tbl k) ~default:[] in
  if not (List.mem v cur) then Hashtbl.replace tbl k (v :: cur)

(** Functions whose address is taken anywhere in the program (the sound
    default resolution set for indirect calls). *)
let address_taken_funs (p : program) : string list =
  let fnames = List.map (fun f -> f.f_name) p.p_funs in
  let taken = Hashtbl.create 8 in
  let rec scan_exp = function
    | Const _ -> ()
    | Lval lv -> scan_lval lv
    | AddrOf (Var v) when List.mem v fnames -> Hashtbl.replace taken v ()
    | AddrOf lv -> scan_lval lv
    | Unop (_, e) -> scan_exp e
    | Binop (_, a, b) -> scan_exp a; scan_exp b
  and scan_lval = function
    | Var v -> if List.mem v fnames then Hashtbl.replace taken v ()
    | Deref e -> scan_exp e
    | Index (lv, e) -> scan_lval lv; scan_exp e
    | Field (lv, _) -> scan_lval lv
    | Arrow (e, _) -> scan_exp e
  in
  iter_program_stmts
    (fun s ->
      match s.skind with
      | Assign (_, e) -> scan_exp e
      | Call (_, tgt, args) ->
          (match tgt with ViaPtr e -> scan_exp e | Direct _ -> ());
          List.iter scan_exp args
      | Builtin (_, _, args) -> List.iter scan_exp args
      | If (e, _, _) | While (e, _, _) -> scan_exp e
      | Return (Some e) -> scan_exp e
      | _ -> ())
    p;
  List.of_seq (Hashtbl.to_seq_keys taken)

(** Extract the function names an expression used as a spawn/call target can
    denote, syntactically (direct name or address-of). *)
let syntactic_targets (p : program) (e : exp) : string list option =
  match e with
  | Lval (Var v) | AddrOf (Var v) ->
      if find_fun p v <> None then Some [ v ] else None
  | _ -> None

(** Build the call graph. [resolve] maps a function-pointer expression
    (evaluated in [caller]) to candidate function names. *)
let build ?(resolve : (string -> exp -> string list) option) (p : program) : t
    =
  let default_targets = address_taken_funs p in
  let resolve caller e =
    match resolve with
    | Some r -> r caller e
    | None -> (
        match syntactic_targets p e with
        | Some ts -> ts
        | None -> default_targets)
  in
  let calls = Hashtbl.create 64 in
  let callers = Hashtbl.create 64 in
  let spawns = ref [] in
  List.iter
    (fun (f : fundec) ->
      (* ensure every function has an entry *)
      if not (Hashtbl.mem calls f.f_name) then Hashtbl.replace calls f.f_name [];
      (* track loop nesting while walking *)
      let rec walk in_loop (b : block) =
        List.iter
          (fun s ->
            match s.skind with
            | Call (_, Direct g, _) ->
                add_multi calls f.f_name g;
                add_multi callers g f.f_name
            | Call (_, ViaPtr e, _) ->
                List.iter
                  (fun g ->
                    add_multi calls f.f_name g;
                    add_multi callers g f.f_name)
                  (resolve f.f_name e)
            | Builtin (_, Spawn, target :: _) ->
                let tgts =
                  match syntactic_targets p target with
                  | Some ts -> ts
                  | None -> resolve f.f_name target
                in
                spawns :=
                  {
                    sp_sid = s.sid;
                    sp_caller = f.f_name;
                    sp_targets = tgts;
                    sp_in_loop = in_loop;
                  }
                  :: !spawns
            | If (_, b1, b2) -> walk in_loop b1; walk in_loop b2
            | While (_, body, _) -> walk true body
            | _ -> ())
          b
      in
      walk false f.f_body)
    p.p_funs;
  let roots =
    "main"
    :: List.concat_map (fun sp -> sp.sp_targets) !spawns
    |> List.sort_uniq compare
  in
  { cg_calls = calls; cg_callers = callers; cg_spawns = !spawns; cg_roots = roots }

let callees (cg : t) f = Option.value (Hashtbl.find_opt cg.cg_calls f) ~default:[]

(** Transitive closure of callees from [f], including [f]. *)
let reachable_from (cg : t) (f : string) : string list =
  let seen = Hashtbl.create 16 in
  let rec go f =
    if not (Hashtbl.mem seen f) then begin
      Hashtbl.replace seen f ();
      List.iter go (callees cg f)
    end
  in
  go f;
  List.sort compare (List.of_seq (Hashtbl.to_seq_keys seen))

(** Bottom-up order: callees before callers. Cycles (recursion) are broken
    arbitrarily; the summary computation iterates to a fixpoint anyway. *)
let bottom_up_order (cg : t) (p : program) : string list =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit f =
    if not (Hashtbl.mem visited f) then begin
      Hashtbl.replace visited f ();
      List.iter
        (fun g -> if find_fun p g <> None then visit g)
        (callees cg f);
      order := f :: !order
    end
  in
  List.iter (fun (f : fundec) -> visit f.f_name) p.p_funs;
  List.rev !order

(** Can two dynamic instances of root [r] exist concurrently? True if some
    spawn site targeting [r] sits in a loop, appears more than once, or is
    in a function reachable from multiple spawn sites. Conservative. *)
let root_multiply_spawned (cg : t) (r : string) : bool =
  let sites = List.filter (fun sp -> List.mem r sp.sp_targets) cg.cg_spawns in
  match sites with
  | [] -> false
  | [ sp ] ->
      sp.sp_in_loop
      || (* the spawning function itself runs in several threads *)
      List.exists
        (fun root ->
          root <> "main" && List.mem sp.sp_caller (reachable_from cg root))
        cg.cg_roots
  | _ -> true
