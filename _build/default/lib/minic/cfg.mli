(** Control-flow graphs for MiniC functions, with dominators
    (Cooper–Harvey–Kennedy) and natural-loop detection. MiniC is fully
    structured, so natural loops coincide with syntactic [While]s — the
    test suite checks exactly that. *)

type node = {
  n_id : int;
  mutable n_stmts : int list;   (** sids of simple statements, in order *)
  mutable n_succs : int list;
  mutable n_preds : int list;
  mutable n_loop : int option;  (** lid of the loop this node heads *)
}

type t = {
  c_fun : string;
  c_nodes : node array;
  c_entry : int;
  c_exit : int;
}

val build : Ast.fundec -> t

(** Immediate dominators; [idom.(entry) = entry], unreachable nodes map
    to [-1]. *)
val idom : t -> int array

val dominates : int array -> int -> int -> bool

(** Back edges [(tail, head)] where head dominates tail. *)
val back_edges : t -> (int * int) list

val natural_loop : t -> int * int -> int list

(** Natural loops keyed by the syntactic loop id of their header. *)
val loops : t -> (int * int list) list

val sids_of_nodes : t -> int list -> int list
