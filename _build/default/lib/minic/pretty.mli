(** Pretty-printer for MiniC. Output of uninstrumented programs is valid
    MiniC (parse/print roundtrip is property-tested); weak-lock regions
    print as [__weak_enter]/[__weak_exit] pseudo-calls for human
    inspection. *)

open Ast

val pp_exp : exp Fmt.t
val pp_lval : lval Fmt.t

val pp_stmt : int -> stmt Fmt.t
(** Statement at the given indentation. *)

val pp_block : int -> block Fmt.t
val pp_fundec : fundec Fmt.t
val pp_global : global Fmt.t
val pp_struct : struct_decl Fmt.t
val pp_program : program Fmt.t
val program_to_string : program -> string
