(** Hand-written lexer for MiniC. Produces a token stream with line
    information; the parser consumes it via a peekable cursor. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string          (* only in annotations / char data, cells *)
  (* keywords *)
  | KW_INT | KW_VOID | KW_STRUCT | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EQ | PLUSEQ | MINUSEQ
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | PLUSPLUS | MINUSMINUS
  | EOF

let pp_token ppf t =
  Fmt.string ppf
    (match t with
    | INT n -> string_of_int n
    | IDENT s -> s
    | STRING s -> Printf.sprintf "%S" s
    | KW_INT -> "int" | KW_VOID -> "void" | KW_STRUCT -> "struct"
    | KW_IF -> "if" | KW_ELSE -> "else" | KW_WHILE -> "while"
    | KW_FOR -> "for" | KW_RETURN -> "return"
    | KW_BREAK -> "break" | KW_CONTINUE -> "continue"
    | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
    | LBRACKET -> "[" | RBRACKET -> "]"
    | SEMI -> ";" | COMMA -> "," | DOT -> "." | ARROW -> "->"
    | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
    | PERCENT -> "%" | AMP -> "&" | PIPE -> "|" | CARET -> "^"
    | TILDE -> "~" | SHL -> "<<" | SHR -> ">>"
    | EQ -> "=" | PLUSEQ -> "+=" | MINUSEQ -> "-="
    | EQEQ -> "==" | NEQ -> "!=" | LT -> "<" | LE -> "<="
    | GT -> ">" | GE -> ">="
    | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
    | PLUSPLUS -> "++" | MINUSMINUS -> "--"
    | EOF -> "<eof>")

exception Lex_error of string * int (* message, line *)

let keyword = function
  | "int" -> Some KW_INT
  | "void" -> Some KW_VOID
  | "struct" -> Some KW_STRUCT
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "for" -> Some KW_FOR
  | "return" -> Some KW_RETURN
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(** Tokenize [src]; returns tokens paired with their 1-based line numbers. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let line = ref 1 in
  let toks = ref [] in
  let emit t = toks := (t, !line) :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    (match c with
    | ' ' | '\t' | '\r' -> incr i
    | '\n' -> incr line; incr i
    | '/' when peek 1 = Some '/' ->
        while !i < n && src.[!i] <> '\n' do incr i done
    | '/' when peek 1 = Some '*' ->
        i := !i + 2;
        let fin = ref false in
        while not !fin do
          if !i + 1 >= n then raise (Lex_error ("unterminated comment", !line))
          else if src.[!i] = '*' && src.[!i + 1] = '/' then (i := !i + 2; fin := true)
          else (if src.[!i] = '\n' then incr line; incr i)
        done
    | '"' ->
        let b = Buffer.create 16 in
        incr i;
        let fin = ref false in
        while not !fin do
          if !i >= n then raise (Lex_error ("unterminated string", !line))
          else
            match src.[!i] with
            | '"' -> incr i; fin := true
            | '\\' when !i + 1 < n ->
                (match src.[!i + 1] with
                | 'n' -> Buffer.add_char b '\n'
                | 't' -> Buffer.add_char b '\t'
                | c -> Buffer.add_char b c);
                i := !i + 2
            | c -> Buffer.add_char b c; incr i
        done;
        emit (STRING (Buffer.contents b))
    | c when is_digit c ->
        let j = ref !i in
        while !j < n && is_digit src.[!j] do incr j done;
        emit (INT (int_of_string (String.sub src !i (!j - !i))));
        i := !j
    | c when is_ident_start c ->
        let j = ref !i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let s = String.sub src !i (!j - !i) in
        emit (match keyword s with Some k -> k | None -> IDENT s);
        i := !j
    | _ ->
        let two a b t =
          if c = a && peek 1 = Some b then (emit t; i := !i + 2; true) else false
        in
        if
          two '-' '>' ARROW || two '<' '<' SHL || two '>' '>' SHR
          || two '=' '=' EQEQ || two '!' '=' NEQ || two '<' '=' LE
          || two '>' '=' GE || two '&' '&' ANDAND || two '|' '|' OROR
          || two '+' '=' PLUSEQ || two '-' '=' MINUSEQ
          || two '+' '+' PLUSPLUS || two '-' '-' MINUSMINUS
        then ()
        else begin
          (match c with
          | '(' -> emit LPAREN | ')' -> emit RPAREN
          | '{' -> emit LBRACE | '}' -> emit RBRACE
          | '[' -> emit LBRACKET | ']' -> emit RBRACKET
          | ';' -> emit SEMI | ',' -> emit COMMA | '.' -> emit DOT
          | '+' -> emit PLUS | '-' -> emit MINUS | '*' -> emit STAR
          | '/' -> emit SLASH | '%' -> emit PERCENT
          | '&' -> emit AMP | '|' -> emit PIPE | '^' -> emit CARET
          | '~' -> emit TILDE | '=' -> emit EQ
          | '<' -> emit LT | '>' -> emit GT | '!' -> emit BANG
          | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line)));
          incr i
        end)
  done;
  emit EOF;
  List.rev !toks
