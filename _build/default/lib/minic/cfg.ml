(** Control-flow graphs for MiniC functions, with dominator computation
    (Cooper–Harvey–Kennedy) and natural-loop detection.

    MiniC is fully structured, so loops found via back edges coincide with
    syntactic [While] loops; the CFG view is used by the analyses that need
    flow information (the symbolic bounds analysis's invariance checks) and
    validated against the syntax in the test suite. *)

open Ast

type node = {
  n_id : int;
  mutable n_stmts : int list;      (** sids of simple statements, in order *)
  mutable n_succs : int list;
  mutable n_preds : int list;
  mutable n_loop : int option;     (** lid of the loop this node heads *)
}

type t = {
  c_fun : string;
  c_nodes : node array;
  c_entry : int;
  c_exit : int;
}

type builder = { mutable nodes : node list; mutable count : int }

let new_node b =
  let n = { n_id = b.count; n_stmts = []; n_succs = []; n_preds = []; n_loop = None } in
  b.count <- b.count + 1;
  b.nodes <- n :: b.nodes;
  n

let add_edge a b =
  if not (List.mem b.n_id a.n_succs) then begin
    a.n_succs <- a.n_succs @ [ b.n_id ];
    b.n_preds <- b.n_preds @ [ a.n_id ]
  end

(** Build the CFG of [f]. Every [While] gets a dedicated header node. *)
let build (f : fundec) : t =
  let b = { nodes = []; count = 0 } in
  let entry = new_node b in
  let exit_ = new_node b in
  (* [go cur block ~brk ~cont] threads statements through [cur], returning
     the node where control ends up (None if the block always transfers
     away). *)
  let rec go (cur : node) (blk : block) ~(brk : node option)
      ~(cont : node option) : node option =
    match blk with
    | [] -> Some cur
    | s :: rest -> (
        match s.skind with
        | Assign _ | Call _ | Builtin _ | WeakEnter _ | WeakExit _ ->
            cur.n_stmts <- cur.n_stmts @ [ s.sid ];
            go cur rest ~brk ~cont
        | Return _ ->
            cur.n_stmts <- cur.n_stmts @ [ s.sid ];
            add_edge cur exit_;
            None
        | Break -> (
            match brk with
            | Some t -> add_edge cur t; None
            | None -> None (* malformed; drop *))
        | Continue -> (
            match cont with
            | Some t -> add_edge cur t; None
            | None -> None)
        | If (_, tb, eb) -> (
            let tn = new_node b and en = new_node b in
            add_edge cur tn;
            add_edge cur en;
            let t_end = go tn tb ~brk ~cont in
            let e_end = go en eb ~brk ~cont in
            match (t_end, e_end) with
            | None, None -> None
            | _ ->
                let join = new_node b in
                Option.iter (fun n -> add_edge n join) t_end;
                Option.iter (fun n -> add_edge n join) e_end;
                go join rest ~brk ~cont)
        | While (_, body, li) ->
            let header = new_node b in
            header.n_loop <- Some li.lid;
            header.n_stmts <- [ s.sid ];
            add_edge cur header;
            let body_n = new_node b in
            let after = new_node b in
            add_edge header body_n;
            add_edge header after;
            (match go body_n body ~brk:(Some after) ~cont:(Some header) with
            | Some last -> add_edge last header
            | None -> ());
            go after rest ~brk ~cont)
  in
  (match go entry f.f_body ~brk:None ~cont:None with
  | Some last -> add_edge last exit_
  | None -> ());
  let nodes = Array.make b.count entry in
  List.iter (fun n -> nodes.(n.n_id) <- n) b.nodes;
  { c_fun = f.f_name; c_nodes = nodes; c_entry = entry.n_id; c_exit = exit_.n_id }

(* ------------------------------------------------------------------ *)
(* Dominators (Cooper–Harvey–Kennedy) *)

(** [idom cfg] returns the immediate-dominator array; [idom.(entry) = entry]
    and unreachable nodes map to [-1]. *)
let idom (cfg : t) : int array =
  let n = Array.length cfg.c_nodes in
  (* reverse postorder *)
  let order = Array.make n (-1) in
  let rpo = ref [] in
  let visited = Array.make n false in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs cfg.c_nodes.(i).n_succs;
      rpo := i :: !rpo
    end
  in
  dfs cfg.c_entry;
  List.iteri (fun k i -> order.(i) <- k) !rpo;
  let doms = Array.make n (-1) in
  doms.(cfg.c_entry) <- cfg.c_entry;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while order.(!a) > order.(!b) do a := doms.(!a) done;
      while order.(!b) > order.(!a) do b := doms.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun i ->
        if i <> cfg.c_entry then begin
          let preds =
            List.filter (fun p -> doms.(p) <> -1) cfg.c_nodes.(i).n_preds
          in
          match preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if doms.(i) <> new_idom then begin
                doms.(i) <- new_idom;
                changed := true
              end
        end)
      !rpo
  done;
  doms

(** [dominates doms a b] iff node [a] dominates node [b]. *)
let dominates (doms : int array) a b =
  let rec up x = if x = a then true else if x = doms.(x) || doms.(x) = -1 then false else up doms.(x) in
  up b

(** Back edges [(tail, head)] where head dominates tail. *)
let back_edges (cfg : t) : (int * int) list =
  let doms = idom cfg in
  let acc = ref [] in
  Array.iter
    (fun nd ->
      List.iter
        (fun s -> if doms.(nd.n_id) <> -1 && dominates doms s nd.n_id then acc := (nd.n_id, s) :: !acc)
        nd.n_succs)
    cfg.c_nodes;
  !acc

(** Natural loop of a back edge: all nodes that reach [tail] without going
    through [head], plus [head]. *)
let natural_loop (cfg : t) (tail, head) : int list =
  let in_loop = Hashtbl.create 8 in
  Hashtbl.replace in_loop head ();
  let rec add n =
    if not (Hashtbl.mem in_loop n) then begin
      Hashtbl.replace in_loop n ();
      List.iter add cfg.c_nodes.(n).n_preds
    end
  in
  add tail;
  List.sort compare (List.of_seq (Hashtbl.to_seq_keys in_loop))

(** All natural loops keyed by the syntactic loop id of their header. *)
let loops (cfg : t) : (int * int list) list =
  back_edges cfg
  |> List.filter_map (fun (t, h) ->
         match cfg.c_nodes.(h).n_loop with
         | Some lid -> Some (lid, natural_loop cfg (t, h))
         | None -> None)

(** Sids contained in a node set. *)
let sids_of_nodes (cfg : t) (ns : int list) : int list =
  List.concat_map (fun i -> cfg.c_nodes.(i).n_stmts) ns
