(** Hand-written lexer for MiniC. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW_INT | KW_VOID | KW_STRUCT | KW_IF | KW_ELSE | KW_WHILE | KW_FOR
  | KW_RETURN | KW_BREAK | KW_CONTINUE
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | EQ | PLUSEQ | MINUSEQ
  | EQEQ | NEQ | LT | LE | GT | GE
  | ANDAND | OROR | BANG
  | PLUSPLUS | MINUSMINUS
  | EOF

val pp_token : token Fmt.t

exception Lex_error of string * int  (** message, 1-based line *)

(** Tokens paired with their 1-based line numbers; always ends with
    [EOF]. Raises {!Lex_error}. *)
val tokenize : string -> (token * int) list
