(** Type resolution and light checking for MiniC.

    Responsibilities:
    - build symbol tables (structs, globals, functions, per-function locals);
    - compute the type of every expression and lvalue (used by the
      interpreter for pointer-arithmetic scaling and by the analyses for
      abstract-location resolution);
    - rewrite direct calls through function-pointer variables into
      [ViaPtr] calls;
    - reject programs with unbound identifiers, unknown fields, or arity
      mismatches on direct calls.

    Checking is deliberately C-flavoured loose about int/pointer mixing in
    arithmetic (the benchmarks use pointer arithmetic, which is also the
    documented unsoundness corner of RELAY, Section 3.2 of the paper). *)

open Ast

exception Type_error of string * loc

let terr loc fmt = Fmt.kstr (fun m -> raise (Type_error (m, loc))) fmt

type env = {
  prog : program;
  structs : (string, struct_decl) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  funs : (string, fundec) Hashtbl.t;
  locals : (string, ty) Hashtbl.t;  (** params + locals of current function *)
  fname : string;                   (** current function *)
}

let base_env (p : program) =
  let structs = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace structs s.s_name s) p.p_structs;
  let globals = Hashtbl.create 64 in
  List.iter (fun g -> Hashtbl.replace globals g.g_name g.g_ty) p.p_globals;
  let funs = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace funs f.f_name f) p.p_funs;
  { prog = p; structs; globals; funs; locals = Hashtbl.create 16; fname = "" }

(** Environment for the body of [f]. *)
let fun_env (base : env) (f : fundec) =
  let locals = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace locals v.v_name v.v_ty) f.f_params;
  List.iter (fun v -> Hashtbl.replace locals v.v_name v.v_ty) f.f_locals;
  { base with locals; fname = f.f_name }

let env_of_program p = base_env p

let lookup_var env v : ty option =
  match Hashtbl.find_opt env.locals v with
  | Some t -> Some t
  | None -> (
      match Hashtbl.find_opt env.globals v with
      | Some t -> Some t
      | None -> (
          match Hashtbl.find_opt env.funs v with
          | Some f ->
              Some (Tfun (f.f_ret, List.map (fun p -> p.v_ty) f.f_params))
          | None -> None))

let struct_decls env = List.of_seq (Hashtbl.to_seq_values env.structs)

let rec type_of_lval env (lv : lval) : ty =
  match lv with
  | Var v -> (
      match lookup_var env v with
      | Some t -> t
      | None -> terr dummy_loc "unbound variable %s in %s" v env.fname)
  | Deref e -> (
      match type_of_exp env e with
      | Tptr t -> t
      | Tarray (t, _) -> t
      | Tint -> Tint (* int treated as address of int cells; loose *)
      | t -> terr dummy_loc "dereference of non-pointer (%a)" pp_ty t)
  | Index (base, _) -> (
      match type_of_lval env base with
      | Tarray (t, _) -> t
      | Tptr t -> t
      | t -> terr dummy_loc "indexing non-array (%a)" pp_ty t)
  | Field (base, f) -> (
      match type_of_lval env base with
      | Tstruct s -> field_ty env s f
      | t -> terr dummy_loc "field access on non-struct (%a)" pp_ty t)
  | Arrow (e, f) -> (
      match type_of_exp env e with
      | Tptr (Tstruct s) -> field_ty env s f
      | t -> terr dummy_loc "-> on non-struct-pointer (%a)" pp_ty t)

and field_ty env sname f =
  match Hashtbl.find_opt env.structs sname with
  | None -> terr dummy_loc "unknown struct %s" sname
  | Some d -> (
      match List.assoc_opt f d.s_fields with
      | Some t -> t
      | None -> terr dummy_loc "struct %s has no field %s" sname f)

and type_of_exp env (e : exp) : ty =
  match e with
  | Const _ -> Tint
  | Lval lv -> (
      match type_of_lval env lv with
      (* arrays decay to pointers in expression position *)
      | Tarray (t, _) -> Tptr t
      | t -> t)
  | AddrOf lv -> (
      match type_of_lval env lv with
      | Tfun _ as t -> Tptr t
      | t -> Tptr t)
  | Unop (_, e) -> type_of_exp env e
  | Binop (op, a, b) -> (
      match op with
      | Eq | Ne | Lt | Le | Gt | Ge | LAnd | LOr -> Tint
      | Add | Sub -> (
          match (type_of_exp env a, type_of_exp env b) with
          | (Tptr _ as t), _ -> t
          | _, (Tptr _ as t) -> t
          | _ -> Tint)
      | _ -> Tint)

(** Element size (in cells) for pointer arithmetic on a value of type [t]. *)
let elem_size env t =
  match t with
  | Tptr u -> sizeof (struct_decls env) u
  | Tarray (u, _) -> sizeof (struct_decls env) u
  | _ -> 1

(* ------------------------------------------------------------------ *)
(* Checking and call rewriting *)

let rec check_exp env loc (e : exp) : unit =
  match e with
  | Const _ -> ()
  | Lval lv | AddrOf lv -> check_lval env loc lv
  | Unop (_, e) -> check_exp env loc e
  | Binop (_, a, b) -> check_exp env loc a; check_exp env loc b

and check_lval env loc (lv : lval) : unit =
  match lv with
  | Var v ->
      if lookup_var env v = None then terr loc "unbound variable %s" v
  | Deref e -> check_exp env loc e
  | Index (b, e) ->
      check_lval env loc b;
      check_exp env loc e;
      (match type_of_lval env b with
      | Tarray _ | Tptr _ -> ()
      | t -> terr loc "indexing non-array of type %a" pp_ty t)
  | Field (b, f) -> (
      check_lval env loc b;
      match type_of_lval env b with
      | Tstruct s -> ignore (field_ty env s f)
      | t -> terr loc "field access on %a" pp_ty t)
  | Arrow (e, f) -> (
      check_exp env loc e;
      match type_of_exp env e with
      | Tptr (Tstruct s) -> ignore (field_ty env s f)
      | t -> terr loc "-> on %a" pp_ty t)

let builtin_arity = function
  | Spawn -> (2, true) | Join -> (1, false)
  | MutexLock | MutexUnlock -> (1, false)
  | BarrierInit -> (2, false) | BarrierWait -> (1, false)
  | CondWait -> (2, false) | CondSignal | CondBroadcast -> (1, false)
  | Input -> (0, true) | Output -> (1, false)
  | NetRead | FileRead -> (2, true)
  | Malloc -> (1, true) | Free -> (1, false)
  | Yield -> (0, false) | Exit -> (1, false)

let check_stmt env (s : stmt) : stmt =
  let loc = s.sloc in
  let skind =
    match s.skind with
    | Assign (lv, e) ->
        check_lval env loc lv; check_exp env loc e; s.skind
    | Call (ret, Direct f, args) -> (
        Option.iter (check_lval env loc) ret;
        List.iter (check_exp env loc) args;
        match Hashtbl.find_opt env.funs f with
        | Some fd ->
            if List.length fd.f_params <> List.length args then
              terr loc "call to %s: expected %d args, got %d" f
                (List.length fd.f_params) (List.length args);
            s.skind
        | None -> (
            (* a call through a function-pointer variable *)
            match lookup_var env f with
            | Some (Tptr (Tfun _)) -> Call (ret, ViaPtr (Lval (Var f)), args)
            | Some t ->
                terr loc "call of %s which has non-function type %a" f pp_ty t
            | None -> terr loc "call to undefined function %s" f))
    | Call (ret, ViaPtr e, args) ->
        Option.iter (check_lval env loc) ret;
        check_exp env loc e;
        List.iter (check_exp env loc) args;
        s.skind
    | Builtin (ret, b, args) ->
        Option.iter (check_lval env loc) ret;
        List.iter (check_exp env loc) args;
        let arity, has_ret = builtin_arity b in
        if List.length args <> arity then
          terr loc "%s expects %d args, got %d" (builtin_name b) arity
            (List.length args);
        if ret <> None && not has_ret then
          terr loc "%s returns no value" (builtin_name b);
        (* spawn's first argument must denote a function *)
        (match (b, args) with
        | Spawn, f :: _ -> (
            match f with
            | Lval (Var name) | AddrOf (Var name) -> (
                match lookup_var env name with
                | Some (Tfun _) | Some (Tptr (Tfun _)) -> ()
                | _ -> terr loc "spawn of non-function %s" name)
            | _ -> () (* computed target; resolved by pointer analysis *))
        | _ -> ());
        s.skind
    | If (c, _, _) -> check_exp env loc c; s.skind
    | While (c, _, _) -> check_exp env loc c; s.skind
    | Return (Some e) -> check_exp env loc e; s.skind
    | Return None | Break | Continue | WeakEnter _ | WeakExit _ -> s.skind
  in
  { s with skind }

(** Check a program and return it with function-pointer calls resolved to
    [ViaPtr]. Raises {!Type_error}. *)
let check (p : program) : program =
  let base = base_env p in
  (* duplicate detection *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (f : fundec) ->
      if Hashtbl.mem seen f.f_name then
        terr f.f_loc "duplicate function %s" f.f_name;
      Hashtbl.replace seen f.f_name ())
    p.p_funs;
  List.iter
    (fun (g : global) ->
      if Hashtbl.mem seen g.g_name then
        terr g.g_loc "global %s collides with another toplevel name" g.g_name;
      Hashtbl.replace seen g.g_name ())
    p.p_globals;
  if not (Hashtbl.mem base.funs "main") then
    terr dummy_loc "program has no main function";
  let funs =
    List.map
      (fun f ->
        let env = fun_env base f in
        (* locals must not shadow each other *)
        let lseen = Hashtbl.create 16 in
        List.iter
          (fun v ->
            if Hashtbl.mem lseen v.v_name then
              terr v.v_loc "duplicate local %s in %s" v.v_name f.f_name;
            Hashtbl.replace lseen v.v_name ())
          (f.f_params @ f.f_locals);
        { f with f_body = map_stmts (check_stmt env) f.f_body })
      p.p_funs
  in
  { p with p_funs = funs }

(** [parse_and_check src] is the front-end entry point used throughout the
    project. *)
let parse_and_check ?file src = check (Parser.parse ?file src)
