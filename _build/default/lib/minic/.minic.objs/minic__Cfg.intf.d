lib/minic/cfg.mli: Ast
