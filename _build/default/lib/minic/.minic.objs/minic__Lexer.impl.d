lib/minic/lexer.ml: Buffer Fmt List Printf String
