lib/minic/typecheck.mli: Ast Hashtbl
