lib/minic/parser.ml: Ast Fmt Fresh Lexer List Option
