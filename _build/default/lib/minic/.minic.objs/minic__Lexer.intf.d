lib/minic/lexer.mli: Fmt
