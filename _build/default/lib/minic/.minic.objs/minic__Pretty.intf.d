lib/minic/pretty.mli: Ast Fmt
