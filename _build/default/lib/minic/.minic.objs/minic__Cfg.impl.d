lib/minic/cfg.ml: Array Ast Hashtbl List Option
