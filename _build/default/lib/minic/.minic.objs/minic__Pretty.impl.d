lib/minic/pretty.ml: Ast Fmt List String
