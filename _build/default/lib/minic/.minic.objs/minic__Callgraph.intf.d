lib/minic/callgraph.mli: Ast Hashtbl
