lib/instrument/clique.ml: Array Fmt Hashtbl List Set String
