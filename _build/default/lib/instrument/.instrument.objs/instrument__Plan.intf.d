lib/instrument/plan.mli: Clique Fmt Hashtbl Minic Profiling Relay
