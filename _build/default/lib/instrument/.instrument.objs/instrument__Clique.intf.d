lib/instrument/clique.mli: Fmt
