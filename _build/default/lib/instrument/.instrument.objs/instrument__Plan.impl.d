lib/instrument/plan.ml: Clique Fmt Hashtbl List Minic Option Profiling Relay Symbolic
