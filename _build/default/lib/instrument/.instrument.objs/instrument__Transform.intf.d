lib/instrument/transform.mli: Minic Plan
