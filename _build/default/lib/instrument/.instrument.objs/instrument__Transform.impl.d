lib/instrument/transform.ml: Fmt Fresh Hashtbl List Minic Option Plan
