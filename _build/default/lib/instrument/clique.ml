(** Clique analysis over the non-concurrent-function graph (Section 4.2).

    Racy function pairs that profiling never saw concurrent can share a
    single function-lock, provided the set of functions is {e mutually}
    non-concurrent — a clique in the non-concurrent graph. Chimera finds
    maximal cliques greedily and assigns each non-concurrent racy pair
    the function-lock of the clique covering it; a pair in several
    cliques takes the clique containing the most racy pairs (so e.g.
    [alice] in Figure 3 acquires one shared lock f0 instead of two). *)

module Ss = Set.Make (String)

type pair = string * string

let norm (a, b) : pair = if a <= b then (a, b) else (b, a)

type t = {
  cliques : string list array;           (** clique index -> members *)
  assignment : (pair, int) Hashtbl.t;    (** racy pair -> clique index *)
}

let clique_of (t : t) (p : pair) : int option =
  Hashtbl.find_opt t.assignment (norm p)

let members (t : t) i = t.cliques.(i)

let n_cliques (t : t) = Array.length t.cliques

(** [compute ~non_concurrent ~racy] — [non_concurrent] are edges of the
    graph (pairs profiling never saw overlap; self-pairs allowed for
    functions non-concurrent with themselves), [racy] the racy function
    pairs to cover. Only racy pairs that are also non-concurrent edges
    get covered. *)
let compute ~(non_concurrent : pair list) ~(racy : pair list) : t =
  let nc = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace nc (norm p) ()) non_concurrent;
  (* NB: no special case for a = b — a function spawned in several
     threads is concurrent with itself unless profiling says otherwise *)
  let edge a b = Hashtbl.mem nc (norm (a, b)) in
  let racy = List.sort_uniq compare (List.map norm racy) in
  let to_cover =
    List.filter (fun (a, b) -> edge a b) racy
  in
  let racy_tbl = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace racy_tbl p ()) racy;
  let nodes =
    List.concat_map (fun (a, b) -> [ a; b ]) to_cover |> List.sort_uniq compare
  in
  let covered = Hashtbl.create 64 in
  let cliques = ref [] in
  List.iter
    (fun (a, b) ->
      if not (Hashtbl.mem covered (a, b)) then begin
        (* grow a maximal clique from the edge (a, b): repeatedly add the
           candidate adjacent to all members that covers the most
           still-uncovered racy pairs *)
        let clique = ref (Ss.add b (Ss.singleton a)) in
        let adjacent_to_all n =
          (not (Ss.mem n !clique)) && Ss.for_all (fun m -> edge n m) !clique
        in
        let uncovered_gain n =
          Ss.fold
            (fun m acc ->
              let p = norm (n, m) in
              if Hashtbl.mem racy_tbl p && not (Hashtbl.mem covered p) then
                acc + 1
              else acc)
            !clique 0
        in
        let rec grow () =
          let candidates = List.filter adjacent_to_all nodes in
          match candidates with
          | [] -> ()
          | _ ->
              let best =
                List.fold_left
                  (fun best n ->
                    match best with
                    | None -> Some (n, uncovered_gain n)
                    | Some (_, g) when uncovered_gain n > g ->
                        Some (n, uncovered_gain n)
                    | _ -> best)
                  None candidates
              in
              (match best with
              | Some (n, _) ->
                  clique := Ss.add n !clique;
                  grow ()
              | None -> ())
        in
        grow ();
        (* mark racy pairs inside the clique covered *)
        Ss.iter
          (fun x ->
            Ss.iter
              (fun y ->
                let p = norm (x, y) in
                if Hashtbl.mem racy_tbl p then Hashtbl.replace covered p ())
              !clique)
          !clique;
        (* self-races: a function racy with itself joins when
           non-concurrent with itself *)
        cliques := Ss.elements !clique :: !cliques
      end)
    to_cover;
  let cliques = Array.of_list (List.rev !cliques) in
  (* assignment: racy non-concurrent pair -> clique with the most racy
     pairs among those containing both endpoints *)
  let racy_pairs_in members =
    let ms = Ss.of_list members in
    List.length
      (List.filter (fun (a, b) -> Ss.mem a ms && Ss.mem b ms) racy)
  in
  let assignment = Hashtbl.create 64 in
  List.iter
    (fun p ->
      let a, b = p in
      let best = ref None in
      Array.iteri
        (fun i ms ->
          if List.mem a ms && List.mem b ms then
            let score = racy_pairs_in ms in
            match !best with
            | Some (_, s) when s >= score -> ()
            | _ -> best := Some (i, score))
        cliques;
      match !best with
      | Some (i, _) -> Hashtbl.replace assignment p i
      | None -> ())
    to_cover;
  { cliques; assignment }

let pp ppf (t : t) =
  Array.iteri
    (fun i ms ->
      Fmt.pf ppf "clique %d: {%a}@\n" i Fmt.(list ~sep:comma string) ms)
    t.cliques
