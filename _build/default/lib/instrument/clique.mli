(** Clique analysis over the non-concurrent-function graph (paper
    Section 4.2): groups of mutually non-concurrent racy functions share
    one function-lock (Figure 3), found by greedy maximal-clique growth;
    a pair in several cliques takes the clique containing the most racy
    pairs. *)

type pair = string * string

type t

(** [compute ~non_concurrent ~racy]: [non_concurrent] are the graph's
    edges (pairs profiling never saw overlap, self-pairs allowed), [racy]
    the racy function pairs to cover. Only racy pairs that are also edges
    get covered. *)
val compute : non_concurrent:pair list -> racy:pair list -> t

(** Clique index assigned to a racy pair, if covered. *)
val clique_of : t -> pair -> int option

val members : t -> int -> string list
val n_cliques : t -> int
val pp : t Fmt.t
