lib/bench_progs/libc.ml:
