lib/bench_progs/desktop.mli: Interp
