lib/bench_progs/server.ml: Interp Libc Template
