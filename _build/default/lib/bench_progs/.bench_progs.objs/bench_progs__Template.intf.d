lib/bench_progs/template.mli:
