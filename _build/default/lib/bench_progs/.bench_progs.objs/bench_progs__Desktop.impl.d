lib/bench_progs/desktop.ml: Interp Libc Template
