lib/bench_progs/registry.mli: Fmt Interp
