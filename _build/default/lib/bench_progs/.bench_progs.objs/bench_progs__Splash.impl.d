lib/bench_progs/splash.ml: Interp Libc Template
