lib/bench_progs/server.mli: Interp
