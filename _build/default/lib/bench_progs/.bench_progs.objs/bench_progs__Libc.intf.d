lib/bench_progs/libc.mli:
