lib/bench_progs/splash.mli: Interp
