lib/bench_progs/template.ml: Buffer Fmt List String
