lib/bench_progs/registry.ml: Desktop Fmt Interp List Server Splash String
