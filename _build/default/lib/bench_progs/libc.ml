(** MiniC stand-ins for the C-library routines the benchmarks use.

    The paper includes uClibc in its static analysis (Section 6.2) so
    that library code — notably apache's hot [memset] loop, the paper's
    flagship loop-lock example — is analyzed and instrumented like
    application code. These definitions are appended to each benchmark's
    source for the same reason: races through [memset]/[memcpy] must be
    visible to RELAY and guardable by loop-locks with symbolic bounds. *)

let memset =
  {|
void memset_w(int *dst, int val, int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = val;
  }
}
|}

let memcpy =
  {|
void memcpy_w(int *dst, int *src, int n) {
  int i;
  for (i = 0; i < n; i++) {
    dst[i] = src[i];
  }
}
|}

let checksum =
  {|
int checksum_w(int *buf, int n) {
  int i; int sum;
  sum = 0;
  for (i = 0; i < n; i++) {
    sum = sum + buf[i];
    sum = sum % 1000003;
  }
  return sum;
}
|}

let all = memset ^ memcpy ^ checksum
