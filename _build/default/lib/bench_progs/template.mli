(** Tiny named-placeholder templating for benchmark sources. *)

(** [subst bindings s] replaces every [${NAME}] in [s] with the integer
    bound to [NAME].

    @raise Invalid_argument on an unbound placeholder, so a typo cannot
    silently produce wrong MiniC code. *)
val subst : (string * int) list -> string -> string
