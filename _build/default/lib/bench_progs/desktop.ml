(** The three desktop applications of Table 1: aget, pfscan, pbzip2 —
    MiniC re-implementations with the concurrency structure of the
    originals.

    - {b aget}: multi-threaded download accelerator. Each worker
      [net_read]s chunks into its own disjoint segment of a shared buffer
      (work partitioning the symbolic bounds analysis can prove) and
      racily bumps the shared progress counter [bwritten] (aget's
      well-known benign race). Network latency dominates, so recording
      overlaps with I/O wait — the paper's explanation for aget's ~1.0x
      recording overhead.
    - {b pfscan}: parallel file scanner. [main] fills a work queue before
      starting workers; workers pull files under a mutex and scan
      [file_read] content. The hot inner loop has an if-guarded racy
      update — the paper's Section 7.3 example of instruction- vs
      loop-granularity trade-offs — and its main↔worker races are
      fork-ordered, so function-locks win.
    - {b pbzip2}: pipeline-parallel block compressor. A producer reads
      blocks into a bounded queue guarded by mutex + condition variables;
      workers run-length-compress blocks into per-block output slots
      (disjoint — loop-lock territory); fan-in totals are mutex-protected,
      and the racy [files_done] style counter survives as in the
      original. *)

let sub = Template.subst

(* RLE worst case doubles a block, so output slots are 2*BLK + 8 *)
let blk = 160
let oslot = (2 * blk) + 8

let aget ~workers ~scale =
  sub
    [ ("W", workers); ("PER", scale); ("BUF", workers * scale) ]
    {|
int buf[${BUF}];
int seg_done[${W}];
int bwritten = 0;

struct seg { int id; int lo; int hi; };
struct seg segs[${W}];

void worker(struct seg *sp) {
  int chunk[32];
  int got; int pos; int k; int want;
  pos = sp->lo;
  while (pos < sp->hi) {
    want = sp->hi - pos;
    if (want > 32) { want = 32; }
    got = net_read(chunk, want);
    if (got == 0) { break; }
    for (k = 0; k < got; k++) {
      buf[pos + k] = chunk[k];
    }
    pos = pos + got;
    bwritten = bwritten + got;
  }
  seg_done[sp->id] = 1;
}

int main() {
  int tids[${W}];
  int i; int n; int per; int sum;
  n = ${W};
  per = ${PER};
  for (i = 0; i < n; i++) {
    segs[i].id = i;
    segs[i].lo = i * per;
    segs[i].hi = i * per + per;
  }
  for (i = 0; i < n; i++) {
    tids[i] = spawn(worker, &segs[i]);
  }
  for (i = 0; i < n; i++) {
    join(tids[i]);
  }
  sum = checksum_w(buf, n * per);
  output(bwritten);
  output(sum);
  for (i = 0; i < n; i++) {
    output(seg_done[i]);
  }
  return 0;
}
|}
  ^ Libc.all

let aget_io ~seed ~scale:_ = Interp.Iomodel.random ~seed

let pfscan ~workers ~scale =
  let chunk = min 256 (32 * scale) in
  sub
    [
      ("W", workers);
      ("CHUNK", chunk);
      ("NFILES", min 60 (2 * workers));
    ]
    {|
int queue[64];
int qhead = 0;
int qtail = 0;
int qlock;
int matches = 0;
int mlock;
int files_scanned = 0;
int target = 7;

void scan_file(int fid) {
  int data[8192];
  int got; int k; int local; int total;
  local = 0;
  total = 0;
  got = file_read(&data[0], ${CHUNK});
  while (got > 0) {
    total = total + got;
    if (total > 8192 - ${CHUNK}) { break; }
    got = file_read(&data[total], ${CHUNK});
  }
  for (k = 0; k < total; k++) {
    if (data[k] % 256 == target) {
      local = local + 1;
    }
  }
  lock(&mlock);
  matches = matches + local;
  unlock(&mlock);
  files_scanned = files_scanned + 1;
}

void worker(int *unused) {
  int fid; int again;
  again = 1;
  while (again) {
    fid = 0 - 1;
    lock(&qlock);
    if (qhead < qtail) {
      fid = queue[qhead];
      qhead = qhead + 1;
    }
    unlock(&qlock);
    if (fid < 0) {
      again = 0;
    } else {
      scan_file(fid);
    }
  }
}

int main() {
  int tids[${W}];
  int i; int nfiles;
  nfiles = ${NFILES};
  for (i = 0; i < nfiles; i++) {
    queue[qtail] = i;
    qtail = qtail + 1;
  }
  for (i = 0; i < ${W}; i++) {
    tids[i] = spawn(worker, &qlock);
  }
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  output(matches);
  output(files_scanned);
  return 0;
}
|}
  ^ Libc.all

let pfscan_io ~seed ~scale =
  Interp.Iomodel.stream ~seed ~chunks:scale ~chunk_size:256 ~input_range:256

let pbzip2 ~workers ~scale =
  let nblocks = min 16 (max 4 (2 * scale)) in
  sub
    [
      ("W", workers);
      ("BLK", blk);
      ("OSLOT", oslot);
      ("NBLK", nblocks);
      ("BLKCAP", nblocks * blk);
      ("OUTCAP", nblocks * oslot);
    ]
    {|
int inq[32];
int inq_head = 0;
int inq_tail = 0;
int inq_lock;
int inq_nonempty;
int inq_nonfull;
int producer_done = 0;

int blocks[${BLKCAP}];
int outbuf[${OUTCAP}];
int outlen[${NBLK}];
int written = 0;
int wlock;

void compress_block(int b) {
  int scratch[${OSLOT}];
  int i; int run; int prev; int cur; int o; int len;
  o = b * ${OSLOT};
  prev = 0 - 1;
  run = 0;
  len = 0;
  for (i = 0; i < ${BLK}; i++) {
    cur = blocks[b * ${BLK} + i];
    if (cur == prev) {
      run = run + 1;
    } else {
      if (run > 0) {
        scratch[len] = prev;
        scratch[len + 1] = run;
        len = len + 2;
      }
      prev = cur;
      run = 1;
    }
  }
  if (run > 0) {
    scratch[len] = prev;
    scratch[len + 1] = run;
    len = len + 2;
  }
  for (i = 0; i < len; i++) {
    outbuf[o + i] = scratch[i];
  }
  outlen[b] = len;
}

void worker(int *unused) {
  int b; int more;
  more = 1;
  while (more) {
    b = 0 - 1;
    lock(&inq_lock);
    while (inq_head == inq_tail && producer_done == 0) {
      cond_wait(&inq_nonempty, &inq_lock);
    }
    if (inq_head < inq_tail) {
      b = inq[inq_head % 32];
      inq_head = inq_head + 1;
      cond_signal(&inq_nonfull);
    }
    unlock(&inq_lock);
    if (b < 0) {
      more = 0;
    } else {
      compress_block(b);
      lock(&wlock);
      written = written + outlen[b];
      unlock(&wlock);
    }
  }
}

void producer(int *count) {
  int tmp[${BLK}];
  int b; int i; int got;
  for (b = 0; b < *count; b++) {
    got = file_read(tmp, ${BLK});
    for (i = 0; i < ${BLK}; i++) {
      if (i < got) {
        blocks[b * ${BLK} + i] = tmp[i] % 16;
      } else {
        blocks[b * ${BLK} + i] = 0;
      }
    }
    lock(&inq_lock);
    while (inq_tail - inq_head >= 32) {
      cond_wait(&inq_nonfull, &inq_lock);
    }
    inq[inq_tail % 32] = b;
    inq_tail = inq_tail + 1;
    cond_signal(&inq_nonempty);
    unlock(&inq_lock);
  }
  lock(&inq_lock);
  producer_done = 1;
  cond_broadcast(&inq_nonempty);
  unlock(&inq_lock);
}

int main() {
  int tids[${W}];
  int i; int count; int ptid; int sum;
  count = ${NBLK};
  ptid = spawn(producer, &count);
  for (i = 0; i < ${W}; i++) {
    tids[i] = spawn(worker, &i);
  }
  join(ptid);
  for (i = 0; i < ${W}; i++) {
    join(tids[i]);
  }
  sum = checksum_w(outbuf, ${OUTCAP});
  output(written);
  output(sum);
  return 0;
}
|}
  ^ Libc.all

let pbzip2_io ~seed ~scale =
  Interp.Iomodel.stream ~seed ~chunks:(max 4 (2 * scale)) ~chunk_size:blk
    ~input_range:16
