(** Tiny named-placeholder templating for benchmark sources:
    [${NAME}] is replaced by the integer bound to NAME. Fails loudly on
    unresolved placeholders so a typo cannot silently produce wrong
    MiniC code. *)

let subst (bindings : (string * int) list) (s : string) : string =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '$' && s.[!i + 1] = '{' then begin
      let close = String.index_from s (!i + 2) '}' in
      let name = String.sub s (!i + 2) (close - !i - 2) in
      (match List.assoc_opt name bindings with
      | Some v -> Buffer.add_string buf (string_of_int v)
      | None -> Fmt.invalid_arg "Template.subst: unbound placeholder %s" name);
      i := close + 1
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  let out = Buffer.contents buf in
  out
