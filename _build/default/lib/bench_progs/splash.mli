(** The four SPLASH-2 kernels of Table 1: ocean, water, fft, radix —
    MiniC versions with the sharing and synchronization patterns that
    drive the paper's results (barrier phases RELAY deliberately
    ignores, affine partitionings the bounds analysis proves disjoint,
    and radix's statically-unbounded counting loop of Figure 4 — see
    the implementation header).

    [~scale] multiplies the problem size (grid rows, molecules, points,
    keys). The kernels take no runtime input; {!scientific_io} exists
    only to satisfy the registry interface. *)

val ocean : workers:int -> scale:int -> string
val water : workers:int -> scale:int -> string
val fft : workers:int -> scale:int -> string
val radix : workers:int -> scale:int -> string

val scientific_io : seed:int -> scale:int -> Interp.Iomodel.t
