(** The three desktop applications of Table 1: aget, pfscan, pbzip2 —
    MiniC re-implementations with the concurrency structure of the
    originals (see the implementation header for the per-app stories).

    Each [~scale] has the app's own meaning: aget's download size in
    chunks per worker, pfscan's files-to-scan count, pbzip2's blocks to
    compress. Sources include the {!Libc} routines. *)

val aget : workers:int -> scale:int -> string
val aget_io : seed:int -> scale:int -> Interp.Iomodel.t

val pfscan : workers:int -> scale:int -> string
val pfscan_io : seed:int -> scale:int -> Interp.Iomodel.t

val pbzip2 : workers:int -> scale:int -> string
val pbzip2_io : seed:int -> scale:int -> Interp.Iomodel.t
