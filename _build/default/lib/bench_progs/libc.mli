(** MiniC stand-ins for the C-library routines the benchmarks use.

    The paper includes uClibc in its static analysis (Section 6.2) so
    that library code — notably apache's hot [memset] loop, the paper's
    flagship loop-lock example — is analyzed and instrumented like
    application code. These definitions are appended to each benchmark's
    source for the same reason: races through [memset_w]/[memcpy_w] must
    be visible to RELAY and guardable by loop-locks with symbolic
    bounds. *)

val memset : string   (** [memset_w(dst, val, n)] *)

val memcpy : string   (** [memcpy_w(dst, src, n)] *)

val checksum : string (** [checksum_w(buf, n)] — result verification *)

(** All three concatenated, ready to append to a benchmark source. *)
val all : string
