(** Pthread-like synchronization primitives as pure state machines.

    The simulator engine drives these: every operation returns what
    happened and which threads should be woken; the engine owns actual
    thread states, scheduling, and logging. Objects are identified by
    stable {!Key.addr} values (the address the program passes to
    [lock]/[barrier_wait]/...). State is created lazily on first use. *)

type tid = int

(* ------------------------------------------------------------------ *)

module Mutex = struct
  type state = { mutable owner : tid option; mutable waiters : tid list }

  type t = state Key.Addr_tbl.t

  let create () : t = Key.Addr_tbl.create 16

  let get (t : t) k =
    match Key.Addr_tbl.find_opt t k with
    | Some s -> s
    | None ->
        let s = { owner = None; waiters = [] } in
        Key.Addr_tbl.add t k s;
        s

  let acquire (t : t) k ~tid : [ `Acquired | `Blocked ] =
    let s = get t k in
    match s.owner with
    | None ->
        s.owner <- Some tid;
        `Acquired
    | Some o when o = tid -> `Acquired (* re-entrant self-acquire: no-op *)
    | Some _ ->
        if not (List.mem tid s.waiters) then s.waiters <- s.waiters @ [ tid ];
        `Blocked

  (** Release; returns threads to wake (they will retry [acquire]). *)
  let release (t : t) k ~tid : [ `Released of tid list | `Not_owner ] =
    let s = get t k in
    match s.owner with
    | Some o when o = tid ->
        s.owner <- None;
        let w = s.waiters in
        s.waiters <- [];
        `Released w
    | _ -> `Not_owner

  let owner (t : t) k = (get t k).owner
end

(* ------------------------------------------------------------------ *)

module Barrier = struct
  type state = {
    mutable needed : int;
    mutable arrived : tid list;
    mutable generation : int;
  }

  type t = state Key.Addr_tbl.t

  let create () : t = Key.Addr_tbl.create 16

  let get (t : t) k =
    match Key.Addr_tbl.find_opt t k with
    | Some s -> s
    | None ->
        let s = { needed = 0; arrived = []; generation = 0 } in
        Key.Addr_tbl.add t k s;
        s

  let init (t : t) k ~count = (get t k).needed <- count

  (** A thread arrives at the barrier. [`Released tids] means the barrier
      tripped and all of [tids] (including the caller) proceed. *)
  let wait (t : t) k ~tid : [ `Blocked | `Released of tid list ] =
    let s = get t k in
    s.arrived <- s.arrived @ [ tid ];
    if s.needed > 0 && List.length s.arrived >= s.needed then begin
      let woken = s.arrived in
      s.arrived <- [];
      s.generation <- s.generation + 1;
      `Released woken
    end
    else `Blocked
end

(* ------------------------------------------------------------------ *)

module Cond = struct
  type state = { mutable waiters : tid list }

  type t = state Key.Addr_tbl.t

  let create () : t = Key.Addr_tbl.create 16

  let get (t : t) k =
    match Key.Addr_tbl.find_opt t k with
    | Some s -> s
    | None ->
        let s = { waiters = [] } in
        Key.Addr_tbl.add t k s;
        s

  let wait (t : t) k ~tid = (get t k).waiters <- (get t k).waiters @ [ tid ]

  (** Wake at most one waiter. *)
  let signal (t : t) k : tid option =
    let s = get t k in
    match s.waiters with
    | [] -> None
    | w :: rest ->
        s.waiters <- rest;
        Some w

  let broadcast (t : t) k : tid list =
    let s = get t k in
    let ws = s.waiters in
    s.waiters <- [];
    ws
end
