lib/runtime/sync.mli: Key
