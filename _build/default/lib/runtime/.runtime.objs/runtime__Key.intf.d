lib/runtime/key.mli: Fmt Hashtbl Map
