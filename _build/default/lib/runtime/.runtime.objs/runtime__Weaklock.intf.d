lib/runtime/weaklock.mli: Fmt Hashtbl Minic
