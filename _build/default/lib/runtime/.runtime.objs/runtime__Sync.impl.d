lib/runtime/sync.ml: Key List
