lib/runtime/key.ml: Fmt Hashtbl Map Stdlib
