lib/runtime/weaklock.ml: Fmt Hashtbl List Minic
