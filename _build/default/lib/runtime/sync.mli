(** Pthread-like synchronization primitives as pure state machines,
    driven by the simulator engine (which owns thread states, wake-ups,
    and logging). Objects are keyed by the stable address the program
    passes to the operation; state is created lazily. *)

type tid = int

module Mutex : sig
  type t

  val create : unit -> t

  (** Re-entrant self-acquire is a no-op success. *)
  val acquire : t -> Key.addr -> tid:tid -> [ `Acquired | `Blocked ]

  (** Returns the waiters to wake (they retry [acquire]). *)
  val release : t -> Key.addr -> tid:tid -> [ `Released of tid list | `Not_owner ]

  val owner : t -> Key.addr -> tid option
end

module Barrier : sig
  type t

  val create : unit -> t
  val init : t -> Key.addr -> count:int -> unit

  (** Arrive; [`Released tids] means the barrier tripped and all of
      [tids] (including the caller) proceed; the next generation starts
      empty. *)
  val wait : t -> Key.addr -> tid:tid -> [ `Blocked | `Released of tid list ]
end

module Cond : sig
  type t

  val create : unit -> t
  val wait : t -> Key.addr -> tid:tid -> unit

  (** FIFO: wakes the earliest waiter. *)
  val signal : t -> Key.addr -> tid option

  val broadcast : t -> Key.addr -> tid list
end
