(** The experiment harness: regenerates every table and figure of the
    paper's evaluation (Section 7).

      dune exec bench/main.exe                 — everything
      dune exec bench/main.exe -- table2       — a single experiment
      dune exec bench/main.exe -- json -j 4    — 4 domains

    Experiments: table1 table2 fig5 fig6 fig7 fig8 sensitivity ablation
    micro. Numbers are simulated-makespan ratios (see DESIGN.md): absolute
    values differ from the authors' Xeon; the shapes are the reproduction
    target and EXPERIMENTS.md records paper-vs-measured for each.

    [-j N] fans the per-benchmark / per-config measurements out across N
    domains (default [Domain.recommended_domain_count ()]). Every
    experiment computes its rows first and prints afterwards, and each
    row is a pure function of its benchmark and configuration, so the
    output is byte-identical for every N (the parallel≡serial tier-1
    test pins this). *)

open Harness

let benches = Bench_progs.Registry.all

(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1: benchmarks, LOC, profile and evaluation environments";
  Fmt.pr "%-10s %-11s %5s  %-34s %s@." "app" "class" "LOC" "profile env"
    "evaluation env";
  hr 108;
  List.iter
    (fun (b : Bench_progs.Registry.bench) ->
      let profile_env =
        Fmt.str "2 workers, 12 runs, scale %d" b.b_profile_scale
      in
      let eval_env = Fmt.str "2,4,8 workers, scale %d" b.b_eval_scale in
      Fmt.pr "%-10s %-11s %5d  %-34s %s@." b.b_name
        (Fmt.str "%a" Bench_progs.Registry.pp_kind b.b_kind)
        (Bench_progs.Registry.loc b ~workers:4)
        profile_env eval_env)
    benches;
  Fmt.pr "(LOC measured on the MiniC front-end representation, 4 workers, \
          libc included)@."

let table2 () =
  let rows = par_map (fun b -> measure b) benches in
  section
    "Table 2: record and replay performance (4 workers, mean of 3 trials)";
  Fmt.pr "%-10s | %9s %9s | %6s %6s %6s %6s | %7s %7s | %8s %8s@." "app"
    "syscalls" "syncops" "instr" "bb" "loop" "func" "rec-ov" "rep-ov"
    "in-log B" "ord-logB";
  hr 112;
  List.iter
    (fun m ->
      Fmt.pr
        "%-10s | %9.0f %9.0f | %6.0f %6.0f %6.0f %6.0f | %6.2fx %6.2fx | %8.0f %8.0f@."
        m.m_name m.m_syscalls m.m_syncops m.m_weak.(3) m.m_weak.(2)
        m.m_weak.(1) m.m_weak.(0) (record_ov m) (replay_ov m) m.m_input_log
        m.m_order_log)
    rows;
  Fmt.pr "@.(paper: desktop/server 1.01-1.04x record; apache 2.40x on the \
          paper's heavier request mix; scientific 1.21-2.40x; average \
          1.40x)@."

(* Figure 5 / 6 share the per-configuration sweep. Smaller inputs keep the
   naive (instruction-granularity) configuration tractable — its overhead
   ratio is scale-insensitive because every racy statement pays the same
   per-statement price. *)
let fig_configs =
  [
    ("instr", Instrument.Plan.naive);
    ("inst+func", Instrument.Plan.funcs_only);
    ("inst+loop", Instrument.Plan.loops_only);
    ("inst+bb+loop+func", Instrument.Plan.all_opts);
  ]

let fig5 () =
  let rows =
    par_map
      (fun (b : Bench_progs.Registry.bench) ->
        ( b.b_name,
          List.map
            (fun (_, opts) ->
              record_ov (measure b ~opts ~scale:b.b_profile_scale ~trials:1))
            fig_configs ))
      benches
  in
  section "Figure 5: normalized recording overhead per optimization set";
  Fmt.pr "%-10s" "app";
  List.iter (fun (n, _) -> Fmt.pr " %18s" n) fig_configs;
  Fmt.pr "@.";
  hr 90;
  let sums = Array.make (List.length fig_configs) 0. in
  List.iter
    (fun (name, ovs) ->
      Fmt.pr "%-10s" name;
      List.iteri
        (fun i ov ->
          sums.(i) <- sums.(i) +. ov;
          Fmt.pr " %17.2fx" ov)
        ovs;
      Fmt.pr "@.")
    rows;
  hr 90;
  Fmt.pr "%-10s" "mean";
  Array.iter
    (fun s -> Fmt.pr " %17.2fx" (s /. float_of_int (List.length benches)))
    sums;
  Fmt.pr "@.(paper: instr 53x -> inst+func 27x -> inst+loop 33x -> all \
          1.39x)@."

let fig6 () =
  let rows =
    par_map
      (fun (b : Bench_progs.Registry.bench) ->
        ( b.b_name,
          List.map
            (fun (_, opts) ->
              let m = measure b ~opts ~scale:b.b_profile_scale ~trials:1 in
              100. *. weak_total m /. m.m_memops)
            fig_configs ))
      benches
  in
  section "Figure 6: weak-lock operations as % of dynamic memory operations";
  Fmt.pr "%-10s %10s" "app" "dyn-detect";
  List.iter (fun (n, _) -> Fmt.pr " %18s" n) fig_configs;
  Fmt.pr "@.";
  hr 100;
  List.iter
    (fun (name, pcts) ->
      Fmt.pr "%-10s %9.0f%%" name 100.;
      List.iter (fun pct -> Fmt.pr " %17.3f%%" pct) pcts;
      Fmt.pr "@.")
    rows;
  Fmt.pr "(paper: naive ~14%% of memory ops; all optimizations ~0.02%%; a \
          dynamic detector instruments 100%%)@."

let fig7 () =
  let rows = par_map (fun b -> measure b) benches in
  section "Figure 7: sources of recording overhead (fraction of native time)";
  Fmt.pr "%-10s %8s %9s %9s %11s %11s %8s@." "app" "base" "weak-ops"
    "logging" "loop-cont." "other-cont." "total";
  hr 76;
  List.iter
    (fun m ->
      let per_thread v = v /. float_of_int m.m_workers /. m.m_native in
      Fmt.pr "%-10s %7.2fx %8.2fx %8.2fx %10.2fx %10.2fx %7.2fx@." m.m_name
        1.0
        (per_thread m.m_weak_op_ticks)
        (per_thread m.m_log_ticks)
        (per_thread m.m_contention.(1))
        (per_thread
           (m.m_contention.(0) +. m.m_contention.(2) +. m.m_contention.(3)))
        (record_ov m))
    rows;
  Fmt.pr
    "(weak-op / logging / contention ticks are per-thread sums divided by \
     worker count; as in the paper's Fig. 7, loop-lock contention dominates \
     the scientific applications)@."

let fig8 () =
  let rows =
    par_map
      (fun (b : Bench_progs.Registry.bench) ->
        ( b.b_name,
          List.map
            (fun w -> record_ov (measure b ~workers:w ~cores:w ~trials:1))
            [ 2; 4; 8 ] ))
      benches
  in
  section "Figure 8: scalability — recording overhead at 2, 4, 8 threads";
  Fmt.pr "%-10s %12s %12s %12s@." "app" "2 threads" "4 threads" "8 threads";
  hr 52;
  List.iter
    (fun (name, ovs) ->
      Fmt.pr "%-10s" name;
      List.iter (fun ov -> Fmt.pr " %11.2fx" ov) ovs;
      Fmt.pr "@.")
    rows;
  Fmt.pr "(paper: overhead grows with threads for loop-lock-contended \
          scientific apps)@."

let sensitivity () =
  let apps = [ "pfscan"; "water" ] in
  let rows =
    par_map
      (fun runs ->
        ( runs,
          List.map
            (fun name ->
              let b = Bench_progs.Registry.by_name name in
              let prof =
                Profiling.Profile.profile_many
                  ~io_of:(fun i ->
                    b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
                  ~runs
                  (Minic.Typecheck.parse_and_check
                     (b.b_source ~workers:4 ~scale:b.b_profile_scale))
              in
              Profiling.Profile.n_concurrent_pairs prof)
            apps ))
      [ 1; 2; 3; 5; 8; 12; 16; 20 ]
  in
  section
    "Profile sensitivity (Sec 7.3): concurrent pairs vs number of profile runs";
  Fmt.pr "%-10s" "runs";
  List.iter (fun a -> Fmt.pr " %8s" a) apps;
  Fmt.pr "@.";
  hr 30;
  List.iter
    (fun (runs, pairs) ->
      Fmt.pr "%-10d" runs;
      List.iter (fun n -> Fmt.pr " %8d" n) pairs;
      Fmt.pr "@.")
    rows;
  Fmt.pr "(paper: saturates after ~5 runs for pfscan, ~3 for water)@."

let ablation () =
  section
    "Ablation (extension beyond the paper): mask ranges in the bounds \
     analysis";
  Fmt.pr
    "The paper treats bitwise masks as unsupported arithmetic (Sec 5.2), so \
     radix's counting loop gets a -INF..+INF loop-lock (Fig 4). Modeling \
     [e & c] as the range [0, c] instead:@.@.";
  Fmt.pr "%-10s %14s %14s@." "app" "paper rules" "with masks";
  hr 42;
  List.iter
    (fun (name, ov1, ov2) -> Fmt.pr "%-10s %13.2fx %13.2fx@." name ov1 ov2)
    (par_map
       (fun name ->
         let b = Bench_progs.Registry.by_name name in
         let m1 = measure b ~trials:1 in
         let m2 = measure b ~opts:Instrument.Plan.with_masks ~trials:1 in
         (name, record_ov m1, record_ov m2))
       [ "radix"; "fft"; "ocean"; "water" ]);
  Fmt.pr "@."

let timeout_ablation () =
  section "Weak-lock timeout sensitivity (Section 2.3's trade-off)";
  Fmt.pr
    "A weak lock held across program synchronization deadlocks against its \
     waiters until the timeout preempts the owner (forced release + \
     reacquire). Shorter timeouts resolve such stalls faster but preempt \
     more; every choice must still replay deterministically. Workload: two \
     workers whose shared function-lock spans a mutex critical section \
     (3 trials).@.@.";
  let src =
    {|int g0; int g1; int a0[16]; int a1[16]; int m0; int ids[2];
void w0(int *idp) {
  int t0; int t1; int id;
  id = *idp;
  t1 = a1[(id & 15)];
  t1 = ((t1 | 0) | (9 * 2));
  lock(&m0); g1 = t0; a0[(id & 15)] = (8 - 0); unlock(&m0);
  g0 = (g1 * 5);
}
int main() { int t[2]; int i0; int t0;
  for (i0 = 0; i0 < 16; i0++) { a0[i0] = i0 * 3; }
  for (i0 = 0; i0 < 16; i0++) { a1[i0] = i0 * 4; }
  ids[0] = 1; t[0] = spawn(w0, &ids[0]);
  ids[1] = 2; t[1] = spawn(w0, &ids[1]);
  join(t[0]); join(t[1]);
  output(g0); output(g1);
  t0 = 0; for (i0 = 0; i0 < 16; i0++) { t0 = t0 + a0[i0]; } output(t0);
  return 0; }|}
  in
  let an =
    Chimera.Pipeline.analyze ~profile_runs:4
      ~profile_io:(fun i -> Interp.Iomodel.random ~seed:(700 + i))
      (Minic.Parser.parse ~file:"timeout.mc" src)
  in
  let io = Interp.Iomodel.random ~seed:42 in
  Fmt.pr "%-12s %10s %12s %14s@." "timeout" "rec-ov" "forced/run" "ord-log B";
  hr 52;
  List.iter
    (fun (wt, rec_ov, forced_per_run, log_per_run) ->
      Fmt.pr "%-12d %9.2fx %12.1f %14d@." wt rec_ov forced_per_run log_per_run)
    (par_map
       (fun wt ->
         let trials = 3 in
         let acc =
           try
             Chimera.Runner.run_trials ?pool:(Harness.pool ()) ~trials
               ~config_of:(fun t ->
                 {
                   Interp.Engine.default_config with
                   seed = 1 + (t * 13);
                   cores = 4;
                   weak_timeout = wt;
                 })
               ~io_of:(fun _ -> io)
               ~original:an.an_prog ~instrumented:an.an_instrumented ()
           with Chimera.Runner.Trial_diverged tf ->
             Fmt.failwith "timeout ablation: replay diverged (wt=%d): %a" wt
               Chimera.Runner.pp_trial_failure tf
         in
         let sum f = List.fold_left (fun a tr -> a + f tr) 0 acc in
         let tot_native = sum (fun tr -> tr.Chimera.Runner.tr_native.o_ticks) in
         let tot_rec =
           sum (fun tr -> tr.Chimera.Runner.tr_recorded.rc_outcome.o_ticks)
         in
         let tot_forced =
           sum (fun tr ->
               tr.Chimera.Runner.tr_recorded.rc_outcome.o_stats.n_forced)
         in
         let tot_log =
           sum (fun tr -> tr.Chimera.Runner.tr_recorded.rc_order_log_z)
         in
         ( wt,
           float_of_int tot_rec /. float_of_int tot_native,
           float_of_int tot_forced /. float_of_int trials,
           tot_log / trials ))
       [ 500; 2_000; 10_000; 50_000; 100_000 ]);
  Fmt.pr
    "(every row replays deterministically; the paper picks a fixed timeout \
     and reports zero timeouts on its benchmarks — the trade-off only \
     appears when a weak lock spans blocking synchronization)@."

let detexec () =
  section
    "Deterministic execution (extension; the paper's future-work \
     direction)";
  Fmt.pr
    "The transformed program is data-race-free, so Kendo-style logical-time \
     arbitration of synchronization makes execution a function of program + \
     inputs alone — no recording. Outcomes across 4 scheduler seeds:@.@.";
  Fmt.pr "%-10s %22s %22s@." "app" "original (native)" "transformed (det)";
  hr 58;
  List.iter
    (fun (name, orig, det) ->
      Fmt.pr "%-10s %15d outcomes %15d outcome%s@." name orig det
        (if det = 1 then "" else "s"))
    (par_map
       (fun (b : Bench_progs.Registry.bench) ->
         let an =
           analyze b ~opts:Instrument.Plan.all_opts ~workers:4
             ~scale:b.b_profile_scale
         in
         let io = b.b_io ~seed:42 ~scale:b.b_profile_scale in
         let outcomes mode prog =
           List.map
             (fun seed ->
               let o =
                 Interp.Engine.run
                   ~config:{ Interp.Engine.default_config with seed; cores = 4 }
                   ~mode ~io prog
               in
               ( o.Interp.Engine.o_timed_out,
                 List.map snd o.o_outputs,
                 o.o_final_hash ))
             [ 1; 7; 19; 42 ]
           |> List.sort_uniq compare |> List.length
         in
         let orig = outcomes Interp.Engine.Native an.Chimera.Pipeline.an_prog in
         let det = outcomes Interp.Engine.Deterministic an.an_instrumented in
         (b.b_name, orig, det))
       benches);
  Fmt.pr "(1 outcome = deterministic; the racy originals may vary)@."

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock microbenchmarks of the pipeline stages *)

let micro () =
  section "Microbenchmarks (Bechamel, wall-clock)";
  let open Bechamel in
  let b = Bench_progs.Registry.by_name "radix" in
  let src = b.b_source ~workers:4 ~scale:2 in
  let prog = Minic.Typecheck.parse_and_check src in
  let an =
    Chimera.Pipeline.analyze ~profile_runs:2
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:2)
      (Minic.Parser.parse src)
  in
  let io = b.b_io ~seed:42 ~scale:2 in
  let config = { Interp.Engine.default_config with seed = 1; cores = 4 } in
  let tests =
    Test.make_grouped ~name:"chimera"
      [
        Test.make ~name:"parse+typecheck-radix"
          (Staged.stage (fun () ->
               ignore (Minic.Typecheck.parse_and_check src)));
        Test.make ~name:"andersen"
          (Staged.stage (fun () ->
               ignore (Pointer.Andersen.solve (Pointer.Constr.gen prog))));
        Test.make ~name:"steensgaard"
          (Staged.stage (fun () ->
               ignore (Pointer.Steensgaard.solve (Pointer.Constr.gen prog))));
        Test.make ~name:"relay-races"
          (Staged.stage (fun () -> ignore (Relay.Detect.analyze prog)));
        Test.make ~name:"simulate-native"
          (Staged.stage (fun () ->
               ignore
                 (Interp.Engine.run ~config ~mode:Interp.Engine.Native ~io
                    an.an_prog)));
        Test.make ~name:"simulate-record"
          (Staged.stage (fun () ->
               ignore
                 (Interp.Engine.run ~config ~mode:Interp.Engine.Record ~io
                    an.an_instrumented)));
      ]
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let raw =
    Benchmark.all
      (Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ())
      [ clock ] tests
  in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
      clock raw
  in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Bechamel.Analyze.OLS.estimates r with
      | Some [ est ] -> Fmt.pr "%-36s %14.0f ns/run@." name est
      | _ -> Fmt.pr "%-36s (no estimate)@." name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

(** Machine-readable counters for tracking the MHP pruning win across
    PRs: candidate race pairs, statically pruned pairs, and the weak-lock
    acquisitions the surviving pairs cost at record time. Hand-rolled
    JSON on stdout (one object per benchmark, newline-free values). *)
let json () =
  let one (b : Bench_progs.Registry.bench) =
    let m = measure ~trials:1 ~traced:true b in
    let trace_events =
      match m.m_trace with Some su -> su.Trace.su_events | None -> 0
    in
    let trace_dropped =
      match m.m_trace with Some su -> su.Trace.su_dropped | None -> 0
    in
    (* per-thread ring-overflow losses, keyed by the stable tid_path; an
       empty object certifies the trace aggregates above are complete *)
    let dropped_by_thread =
      let pairs =
        match m.m_trace with
        | Some su -> su.Trace.su_dropped_by_thread
        | None -> []
      in
      Fmt.str "{%s}"
        (String.concat ", "
           (List.map
              (fun (tp, d) ->
                Fmt.str {|"%a": %d|} Runtime.Key.pp_tid_path tp d)
              pairs))
    in
    Fmt.str
      {|    {"name": "%s", "workers": %d, "static_pairs": %d, "pruned_pairs": %d, "kept_pairs": %d, "plan_acquisitions": %d, "elided_acquisitions": %d, "runtime_acquisitions": %.1f, "record_overhead": %.3f, "forced_releases": %d, "handoffs_served": %d, "handoffs_expired": %d, "block_events": %d, "mean_queue_depth": %.2f, "trace_events": %d, "trace_dropped": %d, "trace_dropped_by_thread": %s}|}
      m.m_name m.m_workers m.m_static_pairs m.m_pruned_pairs m.m_races
      m.m_plan_acqs m.m_elided_acqs (runtime_acquisitions m) (record_ov m)
      m.m_forced m.m_handoff_served m.m_handoff_expired (block_events m)
      (mean_queue_depth m) trace_events trace_dropped dropped_by_thread
  in
  emit_json
    (Fmt.str {|{"benches": [
%s
]}
|}
       (String.concat ",\n" (par_map one benches)))

(** The lockopt gate (make lockopt-check): run every benchmark with the
    must-lockset elision on and off, diffing each configuration's replay
    digest against its own recording — the elided plan must record and
    replay as faithfully as the raw one — and requiring that elision
    strictly reduces runtime weak-lock acquisitions wherever it removed a
    static acquisition. Exits nonzero on any violation. *)
let lockopt_check () =
  section "Lockopt: must-lockset elision vs the raw plan";
  let rows =
    par_map
      (fun (b : Bench_progs.Registry.bench) ->
        let scale = b.b_eval_scale in
        let an_on = analyze b ~opts:Instrument.Plan.all_opts ~workers:4 ~scale in
        let an_off =
          analyze ~lockopt:false b ~opts:Instrument.Plan.all_opts ~workers:4
            ~scale
        in
        let io = b.b_io ~seed:42 ~scale in
        let config = { Interp.Engine.default_config with seed = 1; cores = 4 } in
        let run_one prog =
          let r = Chimera.Runner.record ~config ~io prog in
          let rep = Chimera.Runner.replay ~config ~io prog r.Chimera.Runner.rc_log in
          (r.Chimera.Runner.rc_outcome, Chimera.Runner.same_execution r.rc_outcome rep)
        in
        let o_on, det_on = run_one an_on.an_instrumented in
        let o_off, det_off = run_one an_off.an_instrumented in
        let weak (o : Interp.Engine.outcome) =
          Array.fold_left ( + ) 0 o.o_stats.n_weak_acq
        in
        let lo = an_on.an_lockopt in
        ( b.b_name,
          lo.Lockopt.lo_plan_acqs,
          lo.Lockopt.lo_elided_acqs,
          weak o_off,
          weak o_on,
          det_off,
          det_on ))
      benches
  in
  Fmt.pr "%-10s %10s %8s | %12s %12s | %10s %10s@." "app" "plan-acqs"
    "elided" "rt-acq off" "rt-acq on" "replay off" "replay on";
  hr 88;
  let failed = ref false in
  List.iter
    (fun (name, plan_acqs, elided, w_off, w_on, det_off, det_on) ->
      let det_str = function Ok () -> "ok" | Error _ -> "DIVERGED" in
      let shrink_ok = elided = 0 || w_on < w_off in
      if det_off <> Ok () || det_on <> Ok () || not shrink_ok then
        failed := true;
      Fmt.pr "%-10s %10d %8d | %12d %12d | %10s %10s%s@." name plan_acqs
        elided w_off w_on (det_str det_off) (det_str det_on)
        (if shrink_ok then "" else "  ACQUISITIONS DID NOT DROP");
      (match det_off with
      | Error d -> Fmt.pr "  off: %a@." Chimera.Runner.pp_divergence d
      | Ok () -> ());
      match det_on with
      | Error d -> Fmt.pr "  on: %a@." Chimera.Runner.pp_divergence d
      | Ok () -> ())
    rows;
  Fmt.pr
    "(each column's replay is diffed against its own recording; elision \
     must never change what a recording replays to)@.";
  if !failed then exit 1

(** The refinement experiment: build an in-memory stress corpus per
    benchmark (seeds x all strategies), refine the lockopt plan on its
    evidence, validate the refined plan over the same cells, and compare
    runtime weak-lock acquisitions and replay determinism of the lockopt
    vs refined instrumentation. Gates: zero safety-valve violations,
    refined acquisitions never above lockopt with a strict drop on at
    least two benchmarks, and record==replay under both plans. Exits
    nonzero on any violation. *)
let refine_check () =
  section "Refine: corpus-driven lock dropping vs the lockopt plan";
  let seeds = [ 1; 2; 3 ] in
  let jobs =
    List.concat_map
      (fun strat -> List.map (fun s -> (s, strat)) seeds)
      Interp.Engine.all_strategies
  in
  let rows =
    par_map
      (fun (b : Bench_progs.Registry.bench) ->
        let scale = b.b_eval_scale in
        let an = analyze b ~opts:Instrument.Plan.all_opts ~workers:4 ~scale in
        let io = b.b_io ~seed:42 ~scale in
        let obs =
          Refine.corpus_observations ~cores:4 ~io
            ~instrumented:an.Chimera.Pipeline.an_instrumented
            ~racy_sids:an.an_report.racy_sids ~jobs ()
        in
        let rf = Refine.refine ~plan:an.an_plan obs in
        let refined = Instrument.Transform.apply an.an_prog rf.rf_plan in
        let va =
          Refine.validate ~cores:4 ~io ~report:an.an_report ~refined ~jobs ()
        in
        let config =
          { Interp.Engine.default_config with seed = 1; cores = 4 }
        in
        let run_one prog =
          let r = Chimera.Runner.record ~config ~io prog in
          let rep =
            Chimera.Runner.replay ~config ~io prog r.Chimera.Runner.rc_log
          in
          ( r.Chimera.Runner.rc_outcome,
            Chimera.Runner.same_execution r.rc_outcome rep )
        in
        let o_base, det_base = run_one an.an_instrumented in
        let o_ref, det_ref = run_one refined in
        ( b.b_name,
          rf,
          va,
          Refine.runtime_weak_acqs o_base,
          Refine.runtime_weak_acqs o_ref,
          det_base,
          det_ref ))
      benches
  in
  Fmt.pr "%-10s %14s %7s %10s | %11s %11s | %9s %9s@." "app"
    "static-acqs" "locks-" "violations" "rt-acq lock" "rt-acq ref"
    "replay lk" "replay rf";
  hr 96;
  let failed = ref false in
  let strict = ref 0 in
  List.iter
    (fun (name, (rf : Refine.t), (va : Refine.validation), w_base, w_ref,
          det_base, det_ref) ->
      let det_str = function Ok () -> "ok" | Error _ -> "DIVERGED" in
      let nv = List.length va.va_violations in
      if w_ref < w_base then incr strict;
      let grew = w_ref > w_base in
      if nv > 0 || grew || det_base <> Ok () || det_ref <> Ok () then
        failed := true;
      Fmt.pr "%-10s %6d -> %4d %7d %10d | %11d %11d | %9s %9s%s@." name
        rf.rf_base_acqs rf.rf_refined_acqs
        (List.length rf.rf_dropped)
        nv w_base w_ref (det_str det_base) (det_str det_ref)
        (if grew then "  ACQUISITIONS GREW" else "");
      List.iter
        (fun v -> Fmt.pr "  %a@." Refine.pp_violation v)
        va.va_violations)
    rows;
  Fmt.pr
    "(corpus: seeds %s x default,pct,storm; refined plans validated by \
     re-recording every cell with the detector attached)@."
    (String.concat "," (List.map string_of_int seeds));
  if !strict < 2 then begin
    Fmt.pr
      "refine: runtime acquisitions dropped strictly on only %d \
       benchmark(s) (need >= 2)@."
      !strict;
    failed := true
  end;
  if !failed then exit 1

let all () =
  table1 ();
  table2 ();
  fig5 ();
  fig6 ();
  fig7 ();
  fig8 ();
  sensitivity ();
  ablation ();
  timeout_ablation ();
  detexec ()

(* ------------------------------------------------------------------ *)
(* Wall-clock harness entry points (see Wall): `wall` emits the
   chimera-wall-bench JSON, `wallcmp BASE FRESH` gates regressions. *)

let wall_cmd args =
  let reps = ref 3 in
  let flame = ref None in
  let rec parse = function
    | [] -> ()
    | "--reps" :: n :: rest -> (
        match int_of_string_opt n with
        | Some r when r >= 1 ->
            reps := r;
            parse rest
        | _ ->
            Fmt.epr "wall: bad --reps value %S@." n;
            exit 1)
    | "--flame" :: file :: rest ->
        flame := Some file;
        parse rest
    | a :: _ ->
        Fmt.epr
          "wall: unknown argument %s (usage: wall [--reps N] [--flame \
           FILE.json])@."
          a;
        exit 1
  in
  parse args;
  Wall.run ?flame:!flame ~reps:!reps ()

let wallcmp_cmd args =
  let max_ratio = ref 2.0 in
  let min_warm = ref 10.0 in
  let max_sched = ref 0.35 in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--max-ratio" :: r :: rest -> (
        match float_of_string_opt r with
        | Some f when f > 0. ->
            max_ratio := f;
            parse rest
        | _ ->
            Fmt.epr "wallcmp: bad --max-ratio value %S@." r;
            exit 1)
    | "--min-warm-speedup" :: r :: rest -> (
        match float_of_string_opt r with
        | Some f when f >= 0. ->
            min_warm := f;
            parse rest
        | _ ->
            Fmt.epr "wallcmp: bad --min-warm-speedup value %S@." r;
            exit 1)
    | "--max-sched-share" :: r :: rest -> (
        match float_of_string_opt r with
        | Some f when f > 0. && f <= 1. ->
            max_sched := f;
            parse rest
        | _ ->
            Fmt.epr "wallcmp: bad --max-sched-share value %S@." r;
            exit 1)
    | a :: rest ->
        files := a :: !files;
        parse rest
  in
  parse args;
  match List.rev !files with
  | [ baseline; fresh ] ->
      Wall.compare ~min_warm_speedup:!min_warm ~max_sched_share:!max_sched
        ~baseline ~fresh ~max_ratio:!max_ratio ()
  | _ ->
      Fmt.epr
        "wallcmp: usage: wallcmp BASELINE.json FRESH.json [--max-ratio R] \
         [--min-warm-speedup S] [--max-sched-share F]@.";
      exit 1

let () =
  let experiments =
    [
      ("table1", table1); ("table2", table2); ("fig5", fig5); ("fig6", fig6);
      ("fig7", fig7); ("fig8", fig8); ("sensitivity", sensitivity);
      ("ablation", ablation); ("timeout", timeout_ablation);
      ("detexec", detexec); ("micro", micro); ("json", json);
      ("lockopt", lockopt_check); ("refine", refine_check);
      ("sustained", (fun () -> Wall.sustained ())); ("all", all);
    ]
  in
  (* split off -j N / -jN; remaining args name experiments *)
  let rec split names jobs = function
    | [] -> (List.rev names, jobs)
    | "-j" :: n :: rest -> split names (Some n) rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-j" ->
        split names (Some (String.sub a 2 (String.length a - 2))) rest
    | a :: rest -> split (a :: names) jobs rest
  in
  let names, jobs = split [] None (List.tl (Array.to_list Sys.argv)) in
  let jobs =
    match jobs with
    | None -> Par.Pool.default_jobs ()
    | Some n -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> j
        | _ ->
            Fmt.epr "bad -j value %S (want a positive integer)@." n;
            exit 1)
  in
  let pool = Par.Pool.create ~domains:jobs () in
  Harness.set_pool pool;
  Fun.protect
    ~finally:(fun () -> Par.Pool.shutdown pool)
    (fun () ->
      match names with
      | [] -> all ()
      (* wall / wallcmp take their own arguments, so they consume the
         whole remaining command line *)
      | "wall" :: rest -> wall_cmd rest
      | "wallcmp" :: rest -> wallcmp_cmd rest
      | names ->
          List.iter
            (fun a ->
              match List.assoc_opt a experiments with
              | Some f -> f ()
              | None ->
                  Fmt.epr "unknown experiment %s (have: %s)@." a
                    (String.concat " "
                       ("wall" :: "wallcmp" :: List.map fst experiments));
                  exit 1)
            names)
