(** Shared machinery for the experiment harness: per-benchmark pipeline
    runs with caching, multi-trial averaging, and the measurement record
    each table/figure selects from. *)

type measurement = {
  m_name : string;
  m_kind : Bench_progs.Registry.kind;
  m_workers : int;
  (* static *)
  m_races : int;          (* pairs kept after MHP pruning *)
  m_static_pairs : int;   (* RELAY candidate pairs before pruning *)
  m_pruned_pairs : int;   (* pairs removed by the MHP pass *)
  m_plan_acqs : int;      (* static acquisitions before lockopt elision *)
  m_elided_acqs : int;    (* acquisitions the must-lockset pass removed *)
  m_loc : int;
  (* DRF logs (Table 2 left) *)
  m_syscalls : float;
  m_syncops : float;
  (* weak-lock logs by granularity: func, loop, bb, instr *)
  m_weak : float array;
  (* performance *)
  m_native : float;
  m_record : float;
  m_replay : float;
  (* log sizes, compressed bytes *)
  m_input_log : float;
  m_order_log : float;
  (* dynamic memory operations + weak ops (Fig. 6) *)
  m_memops : float;
  (* cost decomposition (Fig. 7), in ticks *)
  m_weak_op_ticks : float;
  m_log_ticks : float;
  m_contention : float array;  (* blocked ticks per granularity *)
  m_forced : int;
  (* handoff outcomes after timeout-preemptions, summed over trials *)
  m_handoff_served : int;
  m_handoff_expired : int;
  (* contention metrics from a traced record run (only with ~traced) *)
  m_trace : Trace.summary option;
}

(** Total block events across locks in the traced run (0 untraced). *)
let block_events (m : measurement) =
  match m.m_trace with
  | None -> 0
  | Some su ->
      List.fold_left (fun a lm -> a + lm.Trace.lm_blocks) 0 su.Trace.su_locks

(** Mean waiter-queue depth over all block events (0 if none). *)
let mean_queue_depth (m : measurement) =
  match m.m_trace with
  | None -> 0.
  | Some su ->
      let blocks, qsum =
        List.fold_left
          (fun (b, q) lm -> (b + lm.Trace.lm_blocks, q + lm.Trace.lm_queue_sum))
          (0, 0) su.Trace.su_locks
      in
      if blocks = 0 then 0. else float_of_int qsum /. float_of_int blocks

let record_ov (m : measurement) = m.m_record /. m.m_native
let replay_ov (m : measurement) = m.m_replay /. m.m_native

(** Mean weak-lock acquisitions per recorded run, all granularities. *)
let weak_total (m : measurement) = Array.fold_left ( +. ) 0. m.m_weak

(** Alias for the bench JSON: the runtime cost the pruning saves. *)
let runtime_acquisitions = weak_total

(* ------------------------------------------------------------------ *)
(* Domain-parallel execution: the harness fans per-benchmark (and
   per-config) pipeline runs out across a shared Par.Pool (bench main's
   -j flag). Experiments compute their measurements through par_map and
   print afterwards, so -j N output is byte-identical to -j 1. *)

let jobs_pool : Par.Pool.t option ref = ref None

(** Install the pool the experiments fan out on (none = serial). *)
let set_pool (p : Par.Pool.t) =
  jobs_pool := if Par.Pool.size p > 1 then Some p else None

let pool () = !jobs_pool

(** Parallel [List.map] on the harness pool; plain [List.map] at -j 1.
    Result order (and any exception) depends only on the input list. *)
let par_map f xs =
  match !jobs_pool with
  | Some p -> Par.Pool.map_list p f xs
  | None -> List.map f xs

(* Analysis memo: (bench, workers, scale, opts-tag) -> analysis, computed
   once. Concurrent trials that want the same key neither duplicate the
   analysis nor see a half-built one: the first caller installs
   [Computing] and runs the pipeline; the rest wait on the condition
   variable until the cell is [Ready]. A computation never blocks on the
   pool (its profile runs are serial), so every [Computing] cell has an
   owner making progress and waiters cannot deadlock. *)
type cache_cell = Computing | Ready of Chimera.Pipeline.analysis

let cache_lock = Mutex.create ()
let cache_cond = Condition.create ()

let analysis_cache : (string, cache_cell) Hashtbl.t = Hashtbl.create 32

let opts_tag (o : Instrument.Plan.options) =
  Fmt.str "%b%b%b%b" o.opt_funcs o.opt_loops o.opt_bb o.opt_masks

let analyze ?(lockopt = true) (b : Bench_progs.Registry.bench) ~opts ~workers
    ~scale =
  let key =
    Fmt.str "%s/%d/%d/%s%s" b.b_name workers scale (opts_tag opts)
      (if lockopt then "" else "/nolockopt")
  in
  let compute () =
    let src = b.b_source ~workers ~scale in
    Chimera.Pipeline.analyze ~opts ~profile_runs:12 ~lockopt
      ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
      (Minic.Parser.parse ~file:b.b_name src)
  in
  Mutex.lock cache_lock;
  let rec get () =
    match Hashtbl.find_opt analysis_cache key with
    | Some (Ready an) ->
        Mutex.unlock cache_lock;
        an
    | Some Computing ->
        Condition.wait cache_cond cache_lock;
        get ()
    | None ->
        Hashtbl.replace analysis_cache key Computing;
        Mutex.unlock cache_lock;
        let finish cell =
          Mutex.lock cache_lock;
          (match cell with
          | Some an -> Hashtbl.replace analysis_cache key (Ready an)
          | None -> Hashtbl.remove analysis_cache key);
          Condition.broadcast cache_cond;
          Mutex.unlock cache_lock
        in
        let an =
          try compute ()
          with e ->
            finish None;
            raise e
        in
        finish (Some an);
        an
  in
  get ()

(** Measure one benchmark: [trials] seeds, averaged (the paper reports the
    mean of five trials, Section 7.1). Trials run concurrently on the
    harness pool; each is a pure function of its trial index, so the
    averages are bit-identical to the serial ones. *)
let measure ?(opts = Instrument.Plan.all_opts) ?(workers = 4) ?(cores = 4)
    ?(scale = -1) ?(trials = 3) ?lockopt ?(traced = false)
    ?(strategy = Interp.Engine.Sdefault) (b : Bench_progs.Registry.bench) :
    measurement =
  let scale = if scale < 0 then b.b_eval_scale else scale in
  let an = analyze ?lockopt b ~opts ~workers ~scale in
  let io = b.b_io ~seed:42 ~scale in
  let acc =
    try
      Chimera.Runner.run_trials ?pool:(pool ()) ~trials
        ~config_of:(fun t ->
          {
            Interp.Engine.default_config with
            seed = 1 + (t * 13);
            cores;
            strategy;
          })
        ~io_of:(fun _ -> io)
        ~original:an.an_prog ~instrumented:an.an_instrumented ()
    with Chimera.Runner.Trial_diverged tf ->
      Fmt.failwith "%s: replay diverged during benchmarking: %a" b.b_name
        Chimera.Runner.pp_trial_failure tf
  in
  let n = float_of_int trials in
  let avg f = List.fold_left (fun a x -> a +. f x) 0. acc /. n in
  let s_of (tr : Chimera.Runner.trial) = tr.tr_recorded.rc_outcome.o_stats in
  (* contention metrics come from one extra record run with a sink
     installed (trial-1 configuration), so the measured trials themselves
     stay trace-free and their timings untouched *)
  let m_trace =
    if not traced then None
    else begin
      let sink = Trace.Sink.create () in
      let config =
        { Interp.Engine.default_config with seed = 1 + 13; cores }
      in
      ignore (Chimera.Runner.record ~config ~sink ~io an.an_instrumented);
      Some
        (Trace.summarize ~dropped:(Trace.Sink.dropped sink)
           ~dropped_by_thread:(Trace.Sink.dropped_by_thread sink)
           (Trace.Sink.events sink))
    end
  in
  {
    m_name = b.b_name;
    m_kind = b.b_kind;
    m_workers = workers;
    m_races = List.length an.an_report.races;
    m_static_pairs = an.an_report.n_candidates;
    m_pruned_pairs = List.length an.an_report.pruned;
    m_plan_acqs = an.an_lockopt.Lockopt.lo_plan_acqs;
    m_elided_acqs = an.an_lockopt.Lockopt.lo_elided_acqs;
    m_loc = Bench_progs.Registry.loc b ~workers;
    m_syscalls = avg (fun x -> float_of_int (s_of x).n_syscalls);
    m_syncops = avg (fun x -> float_of_int (s_of x).n_sync_ops);
    m_weak =
      Array.init 4 (fun i -> avg (fun x -> float_of_int (s_of x).n_weak_acq.(i)));
    m_native = avg (fun tr -> float_of_int tr.Chimera.Runner.tr_native.o_ticks);
    m_record =
      avg (fun tr -> float_of_int tr.Chimera.Runner.tr_recorded.rc_outcome.o_ticks);
    m_replay = avg (fun tr -> float_of_int tr.Chimera.Runner.tr_replay.o_ticks);
    m_input_log =
      avg (fun tr -> float_of_int tr.Chimera.Runner.tr_recorded.rc_input_log_z);
    m_order_log =
      avg (fun tr -> float_of_int tr.Chimera.Runner.tr_recorded.rc_order_log_z);
    m_memops = avg (fun x -> float_of_int (s_of x).n_mem_ops);
    m_weak_op_ticks = avg (fun x -> float_of_int (s_of x).weak_op_ticks);
    m_log_ticks =
      avg (fun x ->
          float_of_int
            ((s_of x).log_ticks_sync + (s_of x).log_ticks_weak
            + (s_of x).log_ticks_input));
    m_contention =
      Array.init 4 (fun i ->
          avg (fun x -> float_of_int (s_of x).weak_block_ticks.(i)));
    m_forced =
      List.fold_left (fun a x -> a + (s_of x).n_forced) 0 acc;
    m_handoff_served =
      List.fold_left (fun a x -> a + (s_of x).n_handoff_served) 0 acc;
    m_handoff_expired =
      List.fold_left (fun a x -> a + (s_of x).n_handoff_expired) 0 acc;
    m_trace;
  }

(* ------------------------------------------------------------------ *)
(* JSON emission/reading: both machine-readable outputs (the `json`
   experiment and the wall bench) go through the shared Bjson reader as
   a self-check, so a formatting slip can never ship an unparsable
   document for the regression gates to choke on later. *)

(** Validate [doc] with {!Bjson} and print it to stdout; fails loudly on
    malformed output instead of emitting it. *)
let emit_json (doc : string) : unit =
  (match Bjson.parse doc with
  | exception Bjson.Bad m ->
      Fmt.failwith "harness emitted invalid JSON: %s" m
  | _ -> ());
  print_string doc

(** Load a harness-emitted JSON document. *)
let load_json = Bjson.load_file

(* ------------------------------------------------------------------ *)
(* table formatting *)

let hr width = print_endline (String.make width '-')

let section title =
  Fmt.pr "@.%s@.%s@." title (String.make (String.length title) '=')

let fnum ppf v =
  if Float.abs v >= 1000. then Fmt.pf ppf "%.0f" v else Fmt.pf ppf "%.4g" v
