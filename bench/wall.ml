(** Wall-clock benchmark harness: host-performance timings of the four
    pipeline phases, per benchmark, on the monotonic clock.

    The simulated-tick ratios elsewhere in the harness reproduce the
    paper's *overhead* numbers; this module measures how fast the
    analyzer/recorder/replayer themselves run on the host — the
    regression surface for host-performance work (`make bench-regress`).

    Phases, timed independently per repetition:

    - [analyze]    — RELAY + profiling + planning + lockopt (the static
                     pipeline on the type-checked program)
    - [instrument] — applying the weak-lock plan to the AST
    - [record]     — one recorded run of the instrumented program
    - [replay]     — one replay of that recording under a shifted seed

    Every repetition asserts record==replay digests, so the timings can
    never come from a broken execution. Results are emitted as JSON
    (schema [chimera-wall-bench/1], documented in EXPERIMENTS.md):

    {v
    { "schema": "chimera-wall-bench/1",
      "reps": 3, "workers": 4, "cores": 4,
      "benches": [
        { "name": "aget", "scale": 256,
          "record_ticks": 123456,
          "phases": {
            "analyze":    {"mean_s": 0.41, "min_s": 0.40},
            "instrument": {"mean_s": 0.01, "min_s": 0.01},
            "record":     {"mean_s": 0.52, "min_s": 0.50},
            "replay":     {"mean_s": 0.48, "min_s": 0.46}},
          "record_replay_mean_s": 1.00 }, ... ],
      "total_wall_s": 12.3 }
    v}

    [compare] (the `wallcmp` experiment) reads two such files and fails
    when any benchmark's record+replay mean regressed beyond a tolerance
    ratio — the `make bench-regress` / CI `bench-smoke` gate. *)

let now_s () =
  Int64.to_float (Monotonic_clock.now ()) /. 1e9

(** Time one thunk: result, seconds. *)
let timed (f : unit -> 'a) : 'a * float =
  let t0 = now_s () in
  let v = f () in
  (v, now_s () -. t0)

type phase = { mean_s : float; min_s : float }

let phase_of = function
  | [] -> { mean_s = 0.; min_s = 0. }
  | samples ->
      let n = float_of_int (List.length samples) in
      {
        mean_s = List.fold_left ( +. ) 0. samples /. n;
        min_s = List.fold_left min infinity samples;
      }

type row = {
  w_name : string;
  w_scale : int;
  w_record_ticks : int;  (** simulated ticks of the recorded run (rep 1) *)
  w_analyze : phase;
  w_instrument : phase;
  w_record : phase;
  w_replay : phase;
}

(** record+replay mean — the primary regression metric. *)
let rec_rep (r : row) = r.w_record.mean_s +. r.w_replay.mean_s

(* ------------------------------------------------------------------ *)
(* Measurement *)

let profile_runs = 12 (* matches Harness.analyze *)

(** Run the phases [reps] times for one benchmark. Each repetition is a
    fresh end-to-end pipeline (no analysis cache), so the analyze phase
    measures real work every time. *)
let measure_wall ?(workers = 4) ?(cores = 4) ~reps
    (b : Bench_progs.Registry.bench) : row =
  let scale = b.b_eval_scale in
  let src = b.b_source ~workers ~scale in
  let io = b.b_io ~seed:42 ~scale in
  let config = { Interp.Engine.default_config with seed = 1; cores } in
  let analyze_s = ref [] and instr_s = ref [] in
  let record_s = ref [] and replay_s = ref [] in
  let record_ticks = ref 0 in
  for rep = 1 to reps do
    let parsed = Minic.Parser.parse ~file:b.b_name src in
    let an, t_an =
      timed (fun () ->
          Chimera.Pipeline.analyze ~profile_runs
            ~profile_io:(fun i -> b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale)
            parsed)
    in
    (* the plan application is cheap and already included in [analyze];
       time it on its own as the instrument phase *)
    let _, t_instr =
      timed (fun () ->
          Instrument.Transform.apply an.Chimera.Pipeline.an_prog
            an.Chimera.Pipeline.an_plan)
    in
    let r, t_rec =
      timed (fun () -> Chimera.Runner.record ~config ~io an.an_instrumented)
    in
    let rp, t_rep =
      timed (fun () ->
          Chimera.Runner.replay
            ~config:{ config with Interp.Engine.seed = config.seed + 7919 }
            ~io an.an_instrumented r.Chimera.Runner.rc_log)
    in
    (match Chimera.Runner.same_execution r.Chimera.Runner.rc_outcome rp with
    | Ok () -> ()
    | Error d ->
        Fmt.failwith "wall bench %s: replay diverged: %a" b.b_name
          Chimera.Runner.pp_divergence d);
    if rep = 1 then
      record_ticks := r.Chimera.Runner.rc_outcome.Interp.Engine.o_ticks;
    analyze_s := t_an :: !analyze_s;
    instr_s := t_instr :: !instr_s;
    record_s := t_rec :: !record_s;
    replay_s := t_rep :: !replay_s
  done;
  {
    w_name = b.b_name;
    w_scale = scale;
    w_record_ticks = !record_ticks;
    w_analyze = phase_of !analyze_s;
    w_instrument = phase_of !instr_s;
    w_record = phase_of !record_s;
    w_replay = phase_of !replay_s;
  }

let pp_phase name ppf (p : phase) =
  Fmt.pf ppf {|"%s": {"mean_s": %.6f, "min_s": %.6f}|} name p.mean_s p.min_s

let row_json (r : row) : string =
  Fmt.str
    {|    {"name": "%s", "scale": %d, "record_ticks": %d,
     "phases": {%a, %a, %a, %a},
     "record_replay_mean_s": %.6f}|}
    r.w_name r.w_scale r.w_record_ticks (pp_phase "analyze") r.w_analyze
    (pp_phase "instrument") r.w_instrument (pp_phase "record") r.w_record
    (pp_phase "replay") r.w_replay (rec_rep r)

(** Run the wall benchmark over [benches] and print the JSON document.
    Fans out on the harness pool when one is installed: each benchmark
    is timed within a single domain, so per-bench timings remain
    meaningful (cross-bench contention can only slow them down, which
    the mean/min split and the regression tolerance absorb). *)
let run ?(benches = Bench_progs.Registry.all) ~reps () =
  let t0 = now_s () in
  let rows = Harness.par_map (fun b -> measure_wall ~reps b) benches in
  let total = now_s () -. t0 in
  Fmt.pr
    {|{"schema": "chimera-wall-bench/1", "reps": %d, "workers": 4, "cores": 4,
 "benches": [
%s
 ],
 "total_wall_s": %.3f}
|}
    reps
    (String.concat ",\n" (List.map row_json rows))
    total

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader for the comparison gate (no JSON dep in-tree) *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail m = raise (Bad (Fmt.str "%s at byte %d" m !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let skip_ws () =
      while
        !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        incr pos
      done
    in
    let expect c =
      if !pos < n && s.[!pos] = c then incr pos
      else fail (Fmt.str "expected %c" c)
    in
    let string_lit () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string";
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | c -> Buffer.add_char b c);
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      while
        !pos < n
        && (match s.[!pos] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr pos
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> f
      | None -> fail "bad number"
    in
    let lit word v =
      if
        !pos + String.length word <= n
        && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail ("expected " ^ word)
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '"' -> Str (string_lit ())
      | Some '{' ->
          incr pos;
          skip_ws ();
          if peek () = Some '}' then begin incr pos; Obj [] end
          else begin
            let rec members acc =
              skip_ws ();
              let k = string_lit () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  members ((k, v) :: acc)
              | Some '}' ->
                  incr pos;
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected , or } in object"
            in
            Obj (members [])
          end
      | Some '[' ->
          incr pos;
          skip_ws ();
          if peek () = Some ']' then begin incr pos; List [] end
          else begin
            let rec elems acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  incr pos;
                  elems (v :: acc)
              | Some ']' ->
                  incr pos;
                  List.rev (v :: acc)
              | _ -> fail "expected , or ] in array"
            in
            List (elems [])
          end
      | Some 't' -> lit "true" (Bool true)
      | Some 'f' -> lit "false" (Bool false)
      | Some 'n' -> lit "null" Null
      | Some _ -> Num (number ())
      | None -> fail "unexpected end of input"
    in
    let v = value () in
    skip_ws ();
    v

  let mem k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let num_exn what = function
    | Some (Num f) -> f
    | _ -> raise (Bad ("missing number " ^ what))

  let str_exn what = function
    | Some (Str s) -> s
    | _ -> raise (Bad ("missing string " ^ what))
end

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

type cmp_row = { c_name : string; c_rec_rep : float }

let rows_of_json (j : Json.t) : cmp_row list =
  match Json.mem "benches" j with
  | Some (Json.List bs) ->
      List.map
        (fun b ->
          {
            c_name = Json.str_exn "name" (Json.mem "name" b);
            c_rec_rep =
              Json.num_exn "record_replay_mean_s"
                (Json.mem "record_replay_mean_s" b);
          })
        bs
  | _ -> raise (Json.Bad "no benches array")

(** Compare a fresh wall run against the committed baseline. Exits
    nonzero when any benchmark's record+replay mean exceeds
    [max_ratio] x its baseline (a wall-clock regression), or when a
    baseline benchmark is missing from the new run. Improvements are
    reported but never fail. *)
let compare ~baseline ~fresh ~max_ratio =
  let base = rows_of_json (Json.parse (read_file baseline)) in
  let cur = rows_of_json (Json.parse (read_file fresh)) in
  Fmt.pr "wall-clock regression gate: %s vs baseline %s (tolerance %.2fx)@."
    fresh baseline max_ratio;
  Fmt.pr "%-10s %14s %14s %9s@." "bench" "baseline-s" "current-s" "ratio";
  Fmt.pr "%s@." (String.make 52 '-');
  let failed = ref false in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.c_name = b.c_name) cur with
      | None ->
          failed := true;
          Fmt.pr "%-10s %14.4f %14s %9s  MISSING@." b.c_name b.c_rec_rep "-" "-"
      | Some c ->
          let ratio = c.c_rec_rep /. Float.max 1e-9 b.c_rec_rep in
          let flag = if ratio > max_ratio then "  REGRESSED" else "" in
          if ratio > max_ratio then failed := true;
          Fmt.pr "%-10s %14.4f %14.4f %8.2fx%s@." b.c_name b.c_rec_rep
            c.c_rec_rep ratio flag)
    base;
  let total xs = List.fold_left (fun a r -> a +. r.c_rec_rep) 0. xs in
  Fmt.pr "%s@." (String.make 52 '-');
  Fmt.pr "%-10s %14.4f %14.4f %8.2fx@." "total" (total base) (total cur)
    (total cur /. Float.max 1e-9 (total base));
  if !failed then begin
    Fmt.pr "FAIL: wall-clock regression beyond %.2fx tolerance@." max_ratio;
    exit 1
  end
  else Fmt.pr "OK: within tolerance@."
