(** Wall-clock benchmark harness: host-performance timings of the
    pipeline phases, per benchmark, on the monotonic clock.

    The simulated-tick ratios elsewhere in the harness reproduce the
    paper's *overhead* numbers; this module measures how fast the
    analyzer/recorder/replayer themselves run on the host — the
    regression surface for host-performance work (`make bench-regress`).

    Phases, timed independently per repetition:

    - [analyze]      — RELAY + profiling + planning + lockopt (the static
                       pipeline on the type-checked program, cold: no
                       cache, every stage recomputed). The harness pool
                       is threaded {e inside} the pipeline, so this
                       measures the parallel static pipeline at [-j N];
                       benches are measured one after another so each
                       analyze owns the whole pool.
    - [analyze_warm] — the same call against a freshly populated
                       analysis cache ({!Ancache}): one digest + read +
                       unmarshal, the incremental-rebuild path.
    - [instrument]   — applying the weak-lock plan to the AST
    - [record]       — one recorded run of the instrumented program
    - [replay]       — one replay of that recording under a shifted seed

    Every repetition asserts record==replay digests, so the timings can
    never come from a broken execution. One extra record run per bench
    carries a {!Interp.Phases} attribution (which never perturbs the
    simulated execution — its tick count is asserted against the
    untimed runs) and lands in the JSON as [record_phases]. Results are
    emitted as JSON (schema [chimera-wall-bench/3], documented in
    EXPERIMENTS.md):

    {v
    { "schema": "chimera-wall-bench/3",
      "reps": 3, "workers": 4, "cores": 4, "jobs": 4,
      "benches": [
        { "name": "aget", "scale": 256,
          "record_ticks": 123456,
          "phases": {
            "analyze":      {"mean_s": 0.41, "min_s": 0.40},
            "analyze_warm": {"mean_s": 0.002, "min_s": 0.001},
            "instrument":   {"mean_s": 0.01, "min_s": 0.01},
            "record":       {"mean_s": 0.52, "min_s": 0.50},
            "replay":       {"mean_s": 0.48, "min_s": 0.46}},
          "analyze_stages": {
            "pointer": 0.001, "relay": 0.002, "mhp": 0.001,
            "profile": 0.39, "plan": 0.001, "lockopt": 0.002},
          "record_phases": {
            "total_s": 0.52, "interp_s": 0.40, "recorder_s": 0.08,
            "scheduler_s": 0.02, "weaklock_s": 0.02},
          "record_replay_mean_s": 1.00 }, ... ],
      "total_wall_s": 12.3 }
    v}

    [flame_json] renders the per-bench record-phase breakdown as a
    Chrome-trace flamegraph (one row per benchmark, one complete event
    per phase) loadable in [chrome://tracing] / Perfetto.

    [compare] (the `wallcmp` experiment) reads two such files (via the
    shared {!Bjson} reader) and fails when any benchmark's
    record+replay mean — or its cold analyze mean — regressed beyond a
    tolerance ratio, when the aggregate warm-cache analyze speedup
    falls below its floor, or when the fresh run's aggregate scheduler
    share of record time exceeds its ceiling — the `make bench-regress`
    / CI `bench-smoke` + `sched-check` gates. *)

let now_s () =
  Int64.to_float (Monotonic_clock.now ()) /. 1e9

(** Time one thunk: result, seconds. *)
let timed (f : unit -> 'a) : 'a * float =
  let t0 = now_s () in
  let v = f () in
  (v, now_s () -. t0)

type phase = { mean_s : float; min_s : float }

let phase_of = function
  | [] -> { mean_s = 0.; min_s = 0. }
  | samples ->
      let n = float_of_int (List.length samples) in
      {
        mean_s = List.fold_left ( +. ) 0. samples /. n;
        min_s = List.fold_left min infinity samples;
      }

(** Stage order in the JSON breakdown (matches {!Chimera.Pipeline}'s
    [stage_sink] names). *)
let stage_names = [ "pointer"; "relay"; "mhp"; "profile"; "plan"; "lockopt" ]

(** Record-run wall-clock attribution, seconds (one instrumented run;
    see {!Interp.Phases}). *)
type rec_phases = {
  rp_total : float;
  rp_interp : float;
  rp_recorder : float;
  rp_scheduler : float;
  rp_weaklock : float;
}

type row = {
  w_name : string;
  w_scale : int;
  w_record_ticks : int;  (** simulated ticks of the recorded run (rep 1) *)
  w_analyze : phase;  (** cold: no cache *)
  w_analyze_warm : phase;  (** cache hit on a populated store *)
  w_stages : (string * float) list;  (** mean seconds per static stage *)
  w_instrument : phase;
  w_record : phase;
  w_replay : phase;
  w_rec_phases : rec_phases;
}

(** record+replay mean — the primary regression metric. *)
let rec_rep (r : row) = r.w_record.mean_s +. r.w_replay.mean_s

(* ------------------------------------------------------------------ *)
(* Measurement *)

let profile_runs = 12 (* matches Harness.analyze *)

(** Run the phases [reps] times for one benchmark. Each cold repetition
    is a fresh end-to-end pipeline (no analysis cache), so the analyze
    phase measures real work every time; the warm repetitions then hit a
    cache populated in a throwaway directory. *)
let measure_wall ?(workers = 4) ?(cores = 4) ?pool ~reps
    (b : Bench_progs.Registry.bench) : row =
  let scale = b.b_eval_scale in
  let src = b.b_source ~workers ~scale in
  let io = b.b_io ~seed:42 ~scale in
  let config = { Interp.Engine.default_config with seed = 1; cores } in
  let profile_io i = b.b_io ~seed:(100 + i) ~scale:b.b_profile_scale in
  let analyze_s = ref [] and instr_s = ref [] in
  let record_s = ref [] and replay_s = ref [] in
  let record_ticks = ref 0 in
  let stage_total : (string, float) Hashtbl.t = Hashtbl.create 8 in
  let stage_sink name dt =
    Hashtbl.replace stage_total name
      (dt +. Option.value (Hashtbl.find_opt stage_total name) ~default:0.)
  in
  for rep = 1 to reps do
    let parsed = Minic.Parser.parse ~file:b.b_name src in
    let an, t_an =
      timed (fun () ->
          Chimera.Pipeline.analyze ~profile_runs ~profile_io ?pool ~stage_sink
            parsed)
    in
    (* the plan application is cheap and already included in [analyze];
       time it on its own as the instrument phase *)
    let _, t_instr =
      timed (fun () ->
          Instrument.Transform.apply an.Chimera.Pipeline.an_prog
            an.Chimera.Pipeline.an_plan)
    in
    let r, t_rec =
      timed (fun () -> Chimera.Runner.record ~config ~io an.an_instrumented)
    in
    let rp, t_rep =
      timed (fun () ->
          Chimera.Runner.replay
            ~config:{ config with Interp.Engine.seed = config.seed + 7919 }
            ~io an.an_instrumented r.Chimera.Runner.rc_log)
    in
    (match Chimera.Runner.same_execution r.Chimera.Runner.rc_outcome rp with
    | Ok () -> ()
    | Error d ->
        Fmt.failwith "wall bench %s: replay diverged: %a" b.b_name
          Chimera.Runner.pp_divergence d);
    if rep = 1 then
      record_ticks := r.Chimera.Runner.rc_outcome.Interp.Engine.o_ticks;
    analyze_s := t_an :: !analyze_s;
    instr_s := t_instr :: !instr_s;
    record_s := t_rec :: !record_s;
    replay_s := t_rep :: !replay_s
  done;
  (* warm-cache reps: populate a throwaway store once (untimed), then
     time pure cache hits *)
  let warm_s = ref [] in
  let cache_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-wallcache-%d-%s" (Unix.getpid ()) b.b_name)
  in
  let cache = Ancache.create ~dir:cache_dir () in
  let cache_tag = "wall:" ^ b.b_name in
  let parsed = Minic.Parser.parse ~file:b.b_name src in
  let an_w =
    Chimera.Pipeline.analyze ~profile_runs ~profile_io ?pool ~cache ~cache_tag
      parsed
  in
  for _ = 1 to reps do
    let _, t_warm =
      timed (fun () ->
          Chimera.Pipeline.analyze ~profile_runs ~profile_io ?pool ~cache
            ~cache_tag parsed)
    in
    warm_s := t_warm :: !warm_s
  done;
  ignore (Ancache.clear cache);
  (try Sys.rmdir cache_dir with Sys_error _ -> ());
  (* one attributed record run: where does record-phase wall time go? The
     attribution must be a pure observer, so its tick count is pinned to
     the untimed repetitions' *)
  let ph = Interp.Phases.create ~now:now_s () in
  let r_ph =
    Chimera.Runner.record ~config ~io ~phases:ph
      an_w.Chimera.Pipeline.an_instrumented
  in
  if r_ph.Chimera.Runner.rc_outcome.Interp.Engine.o_ticks <> !record_ticks then
    Fmt.failwith
      "wall bench %s: phase attribution perturbed the run (%d ticks vs %d)"
      b.b_name r_ph.Chimera.Runner.rc_outcome.Interp.Engine.o_ticks
      !record_ticks;
  let stage_mean name =
    Option.value (Hashtbl.find_opt stage_total name) ~default:0.
    /. float_of_int reps
  in
  {
    w_name = b.b_name;
    w_scale = scale;
    w_record_ticks = !record_ticks;
    w_analyze = phase_of !analyze_s;
    w_analyze_warm = phase_of !warm_s;
    w_stages = List.map (fun n -> (n, stage_mean n)) stage_names;
    w_instrument = phase_of !instr_s;
    w_record = phase_of !record_s;
    w_replay = phase_of !replay_s;
    w_rec_phases =
      {
        rp_total = Interp.Phases.total_s ph;
        rp_interp = Interp.Phases.interp_s ph;
        rp_recorder = Interp.Phases.recorder_s ph;
        rp_scheduler = Interp.Phases.scheduler_s ph;
        rp_weaklock = Interp.Phases.weaklock_s ph;
      };
  }

let pp_phase name ppf (p : phase) =
  Fmt.pf ppf {|"%s": {"mean_s": %.6f, "min_s": %.6f}|} name p.mean_s p.min_s

let row_json (r : row) : string =
  let p = r.w_rec_phases in
  Fmt.str
    {|    {"name": "%s", "scale": %d, "record_ticks": %d,
     "phases": {%a, %a, %a, %a, %a},
     "analyze_stages": {%s},
     "record_phases": {"total_s": %.6f, "interp_s": %.6f, "recorder_s": %.6f, "scheduler_s": %.6f, "weaklock_s": %.6f},
     "record_replay_mean_s": %.6f}|}
    r.w_name r.w_scale r.w_record_ticks (pp_phase "analyze") r.w_analyze
    (pp_phase "analyze_warm") r.w_analyze_warm (pp_phase "instrument")
    r.w_instrument (pp_phase "record") r.w_record (pp_phase "replay")
    r.w_replay
    (String.concat ", "
       (List.map
          (fun (n, s) -> Fmt.str {|"%s": %.6f|} n s)
          r.w_stages))
    p.rp_total p.rp_interp p.rp_recorder p.rp_scheduler p.rp_weaklock
    (rec_rep r)

(* ------------------------------------------------------------------ *)
(* Chrome-trace flamegraph of the record-phase breakdown *)

(** One trace row (chrome tid) per benchmark; within it, one complete
    ("ph":"X") event per phase bucket laid end to end, microsecond
    timestamps. Load in chrome://tracing or Perfetto. *)
let flame_json (rows : row list) : string =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[";
  let first = ref true in
  let event fields =
    if not !first then Buffer.add_string b ",\n";
    first := false;
    Buffer.add_string b "{";
    Buffer.add_string b (String.concat "," fields);
    Buffer.add_string b "}"
  in
  List.iteri
    (fun i r ->
      event
        [
          {|"name":"thread_name"|}; {|"ph":"M"|}; {|"pid":0|};
          Fmt.str {|"tid":%d|} i;
          Fmt.str {|"args":{"name":"%s record"}|} r.w_name;
        ];
      let us s = int_of_float (1e6 *. s) in
      let p = r.w_rec_phases in
      let cursor = ref 0 in
      List.iter
        (fun (name, dur_s) ->
          let dur = us dur_s in
          if dur > 0 then begin
            event
              [
                Fmt.str {|"name":"%s"|} name; {|"cat":"record"|};
                {|"ph":"X"|}; {|"pid":0|};
                Fmt.str {|"tid":%d|} i;
                Fmt.str {|"ts":%d|} !cursor;
                Fmt.str {|"dur":%d|} dur;
              ];
            cursor := !cursor + dur
          end)
        [
          ("interp", p.rp_interp); ("recorder", p.rp_recorder);
          ("scheduler", p.rp_scheduler); ("weaklock", p.rp_weaklock);
        ])
    rows;
  Buffer.add_string b "]\n";
  Buffer.contents b

(** Run the wall benchmark over [benches] and print the JSON document.
    Benches run one after another; the harness pool (when installed) is
    threaded {e inside} each pipeline, so the analyze phase measures the
    parallel static pipeline at full [-j N] width rather than one
    serial analyze per domain. *)
let run ?(benches = Bench_progs.Registry.all) ?flame ~reps () =
  let pool = Harness.pool () in
  let jobs = match pool with Some p -> Par.Pool.size p | None -> 1 in
  let t0 = now_s () in
  let rows = List.map (fun b -> measure_wall ?pool ~reps b) benches in
  let total = now_s () -. t0 in
  (match flame with
  | Some file ->
      let oc = open_out file in
      output_string oc (flame_json rows);
      close_out oc;
      Fmt.epr "flamegraph: wrote %s (load in chrome://tracing)@." file
  | None -> ());
  Harness.emit_json
    (Fmt.str
       {|{"schema": "chimera-wall-bench/3", "reps": %d, "workers": 4, "cores": 4, "jobs": %d,
 "benches": [
%s
 ],
 "total_wall_s": %.3f}
|}
       reps jobs
       (String.concat ",\n" (List.map row_json rows))
       total)

(* ------------------------------------------------------------------ *)
(* Sustained-load segmented recording (the `sustained` experiment):
   bounded log residency measured, not asserted *)

type sus_row = {
  s_name : string;
  s_scale : int;
  s_requests : int;  (** syscalls served by the recorded run *)
  s_ticks : int;
  s_segments : int;
  s_events : int;  (** gated events spilled across the segments *)
  s_peak_raw : int;  (** resident-log bound: largest in-memory segment *)
  s_total_raw : int;  (** what a monolithic recording keeps resident *)
  s_total_z : int;  (** compressed on-disk footprint *)
  s_record_s : float;
  s_replay_s : float;
  s_window_s : float;  (** windowed replay to the mid-run checkpoint *)
  s_window_segments : int;  (** segments the window actually read *)
}

let residency_ratio (r : sus_row) =
  float_of_int r.s_total_raw /. float_of_int (max 1 r.s_peak_raw)

(** Record one benchmark at its sustained scale through the spilling
    recorder, then verify the recording three ways — full streamed
    replay matches the recording, a mid-run windowed replay halts early
    on a digest the full replay also computed, and the later segment
    files stay unread by the window — while timing each leg. *)
let measure_sustained ?(workers = 4) ?(cores = 4)
    (b : Bench_progs.Registry.bench) : sus_row =
  let scale = b.b_sustained_scale in
  let an = Harness.analyze b ~opts:Instrument.Plan.all_opts ~workers ~scale in
  let io = b.b_io ~seed:42 ~scale in
  let config = { Interp.Engine.default_config with seed = 1; cores } in
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Fmt.str "chimera-sustained-%d-%s" (Unix.getpid ()) b.b_name)
  in
  let sr, t_rec =
    timed (fun () ->
        Chimera.Runner.record_segmented ~config ~io ~dir
          ~events_per_segment:8192 an.an_instrumented)
  in
  let st = sr.Chimera.Runner.sr_stats in
  let full, t_rep =
    timed (fun () ->
        Chimera.Runner.replay_streamed ~config ~io ~dir an.an_instrumented)
  in
  (match
     Chimera.Runner.same_execution sr.Chimera.Runner.sr_outcome
       full.Chimera.Runner.st_outcome
   with
  | Ok () -> ()
  | Error d ->
      Fmt.failwith "sustained %s: streamed replay diverged: %a" b.b_name
        Chimera.Runner.pp_divergence d);
  (* windowed leg: replay to the middle of the run and stop *)
  let mf = sr.Chimera.Runner.sr_manifest in
  let nseg = Array.length mf.Replay.Seglog.mf_segments in
  let mid = mf.Replay.Seglog.mf_segments.(nseg / 2).Replay.Seglog.sg_last_tick in
  let cover = Replay.Seglog.covering_segment mf ~upto:mid in
  let win, t_win =
    timed (fun () ->
        Chimera.Runner.replay_streamed ~config ~io ~upto_tick:mid ~dir
          an.an_instrumented)
  in
  if not win.Chimera.Runner.st_halted then
    Fmt.failwith "sustained %s: windowed replay ran to completion" b.b_name;
  let digest_at digests idx = List.assoc_opt idx digests in
  (match
     ( digest_at full.Chimera.Runner.st_digests cover,
       digest_at win.Chimera.Runner.st_digests cover )
   with
  | Some df, Some dw when df = dw -> ()
  | df, dw ->
      Fmt.failwith
        "sustained %s: windowed digest mismatch at segment %d (full %a, \
         window %a)"
        b.b_name cover
        Fmt.(option ~none:(any "absent") string)
        df
        Fmt.(option ~none:(any "absent") string)
        dw);
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir));
  {
    s_name = b.b_name;
    s_scale = scale;
    s_requests = sr.Chimera.Runner.sr_outcome.o_stats.n_syscalls;
    s_ticks = sr.Chimera.Runner.sr_outcome.o_ticks;
    s_segments = st.Replay.Seglog.ws_segments;
    s_events = st.Replay.Seglog.ws_events;
    s_peak_raw = st.Replay.Seglog.ws_peak_raw;
    s_total_raw = st.Replay.Seglog.ws_total_raw;
    s_total_z = st.Replay.Seglog.ws_total_z;
    s_record_s = t_rec;
    s_replay_s = t_rep;
    s_window_s = t_win;
    s_window_segments = win.Chimera.Runner.st_segments_loaded;
  }

let sus_row_json (r : sus_row) : string =
  Fmt.str
    {|    {"name": "%s", "scale": %d, "requests": %d, "ticks": %d,
     "segments": %d, "events": %d,
     "peak_raw_bytes": %d, "total_raw_bytes": %d, "total_z_bytes": %d,
     "residency_ratio": %.2f,
     "record_s": %.3f, "replay_s": %.3f, "window_s": %.3f,
     "window_segments": %d}|}
    r.s_name r.s_scale r.s_requests r.s_ticks r.s_segments r.s_events
    r.s_peak_raw r.s_total_raw r.s_total_z (residency_ratio r) r.s_record_s
    r.s_replay_s r.s_window_s r.s_window_segments

(** The sustained-load experiment (`bench sustained`, and the heart of
    `make log-check`): serve tens of thousands of requests through each
    server benchmark under the spilling recorder and emit a
    [chimera-sustained-log/1] JSON report. Fails — beyond the replay
    checks in {!measure_sustained} — when a server's sustained run
    serves fewer than [min_requests] syscalls (the load wasn't
    sustained) or when its peak resident segment is not at least
    [min_ratio] times smaller than the raw log total (spilling didn't
    actually bound memory). *)
let sustained ?(benches = Bench_progs.Registry.all) ?(min_requests = 20_000)
    ?(min_ratio = 4.) () =
  let servers, rest =
    List.partition
      (fun (b : Bench_progs.Registry.bench) ->
        b.b_kind = Bench_progs.Registry.Server)
      benches
  in
  ignore rest;
  if servers = [] then failwith "sustained: no server benchmarks selected";
  let t0 = now_s () in
  let rows = List.map (fun b -> measure_sustained b) servers in
  let total = now_s () -. t0 in
  let failed = ref false in
  List.iter
    (fun r ->
      let ratio = residency_ratio r in
      let low_load = r.s_requests < min_requests in
      let unbounded = ratio < min_ratio in
      if low_load || unbounded then failed := true;
      Fmt.epr
        "sustained %-8s %6d requests, %3d segments: peak %6dB of %8dB raw \
         (%5.1fx residency reduction)%s%s@."
        r.s_name r.s_requests r.s_segments r.s_peak_raw r.s_total_raw ratio
        (if low_load then
           Fmt.str "  LOAD TOO LOW (< %d requests)" min_requests
         else "")
        (if unbounded then Fmt.str "  RESIDENCY UNBOUNDED (< %.1fx)" min_ratio
         else ""))
    rows;
  Harness.emit_json
    (Fmt.str
       {|{"schema": "chimera-sustained-log/1", "workers": 4, "cores": 4,
 "min_requests": %d, "min_residency_ratio": %.1f,
 "benches": [
%s
 ],
 "total_wall_s": %.3f}
|}
       min_requests min_ratio
       (String.concat ",\n" (List.map sus_row_json rows))
       total);
  if !failed then begin
    Fmt.epr "FAIL: sustained-load segmented recording gate@.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* The comparison gate (shared Bjson reader) *)

type cmp_row = {
  c_name : string;
  c_rec_rep : float;
  c_analyze : float;  (** cold analyze mean; 0 when absent *)
  c_warm : float;  (** warm-cache analyze mean; 0 when absent *)
  c_rec_total : float;  (** attributed record total; 0 when absent (pre-/3) *)
  c_rec_sched : float;  (** scheduler + weak-lock admission share of it *)
}

let rows_of_json (j : Bjson.t) : cmp_row list =
  match Bjson.mem "benches" j with
  | Some (Bjson.List bs) ->
      List.map
        (fun b ->
          let phase name field =
            match Bjson.mem "phases" b with
            | Some ph -> Bjson.num_or 0. (Option.bind (Bjson.mem name ph) (Bjson.mem field))
            | None -> 0.
          in
          let rec_phase field =
            match Bjson.mem "record_phases" b with
            | Some rp -> Bjson.num_or 0. (Bjson.mem field rp)
            | None -> 0.
          in
          {
            c_name = Bjson.str_exn "name" (Bjson.mem "name" b);
            c_rec_rep =
              Bjson.num_exn "record_replay_mean_s"
                (Bjson.mem "record_replay_mean_s" b);
            c_analyze = phase "analyze" "mean_s";
            c_warm = phase "analyze_warm" "mean_s";
            c_rec_total = rec_phase "total_s";
            c_rec_sched = rec_phase "scheduler_s" +. rec_phase "weaklock_s";
          })
        bs
  | _ -> raise (Bjson.Bad "no benches array")

(** Compare a fresh wall run against the committed baseline. Exits
    nonzero when any benchmark's record+replay mean — or its cold
    analyze mean — exceeds [max_ratio] x its baseline (a wall-clock
    regression), when a baseline benchmark is missing from the new run,
    or when the fresh run carries warm-cache numbers whose aggregate
    speedup (sum of cold analyze means / sum of warm means) falls below
    [min_warm_speedup] (default 10, the incremental-rebuild floor; the
    aggregate is used because the smallest benches analyze in
    milliseconds cold), or when the fresh run carries record-phase
    attribution whose aggregate scheduler share — scheduler bookkeeping
    plus weak-lock admission over attributed record total — exceeds
    [max_sched_share] (default 0.35: the event-wheel keeps scheduler
    bookkeeping a minority of record time; judged in aggregate because
    the smallest benches record in milliseconds). Improvements are
    reported but never fail. *)
let compare ?(min_warm_speedup = 10.) ?(max_sched_share = 0.35) ~baseline
    ~fresh ~max_ratio () =
  let base = rows_of_json (Bjson.load_file baseline) in
  let cur = rows_of_json (Bjson.load_file fresh) in
  Fmt.pr "wall-clock regression gate: %s vs baseline %s (tolerance %.2fx)@."
    fresh baseline max_ratio;
  Fmt.pr "%-10s %12s %12s %7s | %11s %11s %7s@." "bench" "base-recrep"
    "cur-recrep" "ratio" "base-an" "cur-an" "ratio";
  Fmt.pr "%s@." (String.make 80 '-');
  let failed = ref false in
  let ratio cur base = cur /. Float.max 1e-9 base in
  List.iter
    (fun b ->
      match List.find_opt (fun c -> c.c_name = b.c_name) cur with
      | None ->
          failed := true;
          Fmt.pr "%-10s %12.4f %12s %7s | %11.4f %11s %7s  MISSING@." b.c_name
            b.c_rec_rep "-" "-" b.c_analyze "-" "-"
      | Some c ->
          let rr = ratio c.c_rec_rep b.c_rec_rep in
          let ra =
            (* analyze gate only when the baseline carries the phase *)
            if b.c_analyze > 0. then ratio c.c_analyze b.c_analyze else 0.
          in
          let bad_rr = rr > max_ratio in
          let bad_an = ra > max_ratio in
          if bad_rr || bad_an then failed := true;
          Fmt.pr "%-10s %12.4f %12.4f %6.2fx | %11.4f %11.4f %6.2fx%s%s@."
            b.c_name b.c_rec_rep c.c_rec_rep rr b.c_analyze c.c_analyze ra
            (if bad_rr then "  REC/REP REGRESSED" else "")
            (if bad_an then "  ANALYZE REGRESSED" else ""))
    base;
  let total f xs = List.fold_left (fun a r -> a +. f r) 0. xs in
  Fmt.pr "%s@." (String.make 80 '-');
  Fmt.pr "%-10s %12.4f %12.4f %6.2fx | %11.4f %11.4f %6.2fx@." "total"
    (total (fun r -> r.c_rec_rep) base)
    (total (fun r -> r.c_rec_rep) cur)
    (ratio (total (fun r -> r.c_rec_rep) cur) (total (fun r -> r.c_rec_rep) base))
    (total (fun r -> r.c_analyze) base)
    (total (fun r -> r.c_analyze) cur)
    (ratio (total (fun r -> r.c_analyze) cur) (total (fun r -> r.c_analyze) base));
  (* warm-cache floor: judged on the fresh run alone, in aggregate *)
  let warm_total = total (fun r -> r.c_warm) cur in
  if warm_total > 0. then begin
    let speedup = total (fun r -> r.c_analyze) cur /. warm_total in
    let bad = speedup < min_warm_speedup in
    if bad then failed := true;
    Fmt.pr "warm-cache analyze speedup (aggregate): %.1fx (floor %.1fx)%s@."
      speedup min_warm_speedup
      (if bad then "  TOO SLOW" else "")
  end;
  (* scheduler-share ceiling: also fresh-run-only, in aggregate; absent
     record_phases (a pre-/3 file) leaves the gate off *)
  let rec_total = total (fun r -> r.c_rec_total) cur in
  if rec_total > 0. then begin
    let share = total (fun r -> r.c_rec_sched) cur /. rec_total in
    let bad = share > max_sched_share in
    if bad then failed := true;
    Fmt.pr
      "scheduler share of attributed record time (aggregate): %.3f (ceiling \
       %.2f)%s@."
      share max_sched_share
      (if bad then "  SCHEDULER-HEAVY" else "")
  end;
  if !failed then begin
    Fmt.pr "FAIL: wall-clock regression beyond %.2fx tolerance@." max_ratio;
    exit 1
  end
  else Fmt.pr "OK: within tolerance@."
